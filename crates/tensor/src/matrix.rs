//! Dense row-major matrices.

use crate::scalar::Scalar;
use core::fmt;

/// A dense, row-major matrix over a [`Scalar`] element type.
///
/// Row-major layout is deliberate: SWAT's entire dataflow is row-major
/// (Section 3.2 of the paper), so `Q`, `K`, `V` rows are contiguous slices
/// that map directly onto the accelerator's per-row streaming.
///
/// # Examples
///
/// ```
/// use swat_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix<T> {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::ONE);
        }
        m
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Matrix<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Matrix<T> {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix taking ownership of a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Matrix<T> {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the matrix and returns the row-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Element-wise map into a (possibly different) scalar type.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Converts every element to `f32` (lossless for f32/F16 sources).
    pub fn to_f32(&self) -> Matrix<f32> {
        self.map(|x| x.to_f32())
    }

    /// Rounds every element through binary16 and back, staying in this
    /// scalar type. Used to model loading full-precision data into FP16
    /// hardware buffers.
    pub fn quantize_f16(&self) -> Matrix<T> {
        self.map(|x| T::from_f32(swat_numeric::F16::from_f32(x.to_f32()).to_f32()))
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a.add(b))
                .collect(),
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: T) -> Matrix<T> {
        self.map(|x| x.mul(s))
    }

    /// Maximum absolute element-wise difference, computed in `f32`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm, computed in `f64`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| {
                let v = f64::from(x.to_f32());
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix<{}> {}x{} [", T::NAME, self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<f32> = row.iter().take(8).map(|x| x.to_f32()).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  {shown:?}{ellipsis}")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - show_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_numeric::F16;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn identity_has_ones_on_diagonal() {
        let id = Matrix::<f32>::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_from_vec_agree() {
        let a = Matrix::from_rows(&[&[1.0f32, 2.0][..], &[3.0, 4.0][..]]);
        let b = Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0f32, 2.0][..], &[3.0][..]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = Matrix::<f32>::zeros(2, 2);
        m.set(0, 1, 7.0);
        m.row_mut(1)[0] = 3.0;
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        let b = a.scale(2.0);
        assert_eq!(b.get(1, 1), 8.0);
        let c = a.add(&a);
        assert_eq!(b, c);
    }

    #[test]
    fn quantize_f16_rounds() {
        let a = Matrix::from_vec(1, 2, vec![1.0f32 / 3.0, 1.0]);
        let q = a.quantize_f16();
        assert_eq!(q.get(0, 0), F16::from_f32(1.0 / 3.0).to_f32());
        assert_eq!(q.get(0, 1), 1.0);
    }

    #[test]
    fn f16_matrix_roundtrip() {
        let m = Matrix::from_fn(2, 2, |i, j| F16::from_f32((i + j) as f32 * 0.5));
        let f = m.to_f32();
        assert_eq!(f.get(1, 1), 1.0);
    }

    #[test]
    fn iter_rows_covers_all() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], &[3.0, 3.0]);
    }

    #[test]
    fn norms_and_diffs() {
        let a = Matrix::from_vec(1, 2, vec![3.0f32, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-9);
        let b = Matrix::from_vec(1, 2, vec![3.0f32, 4.5]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::<f32>::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::<f32>::zeros(10, 10);
        let s = format!("{m:?}");
        assert!(s.contains("10x10"));
        assert!(s.contains("more rows"));
    }
}
