//! Matrix kernels: GEMM variants, dot products and row-wise softmax.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Dot product accumulated in the element precision `T`.
///
/// For `T = F16` this rounds after every multiply and every add — the exact
/// behaviour of SWAT's FP16 MAC in the QK stage.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter()
        .zip(b)
        .fold(T::ZERO, |acc, (&x, &y)| acc.add(x.mul(y)))
}

/// Dot product accumulated in `f32` (software-reference behaviour).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_f32_acc<T: Scalar>(a: &[T], b: &[T]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0f32, |acc, (&x, &y)| acc + x.to_f32() * y.to_f32())
}

/// `A · B` with accumulation in the element precision.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    // Transpose b so both operands stream row-major.
    let bt = b.transpose();
    Matrix::from_fn(a.rows(), b.cols(), |i, j| dot(a.row(i), bt.row(j)))
}

/// `A · B` with `f32` accumulation regardless of element type.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm_f32_acc<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<f32> {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    let bt = b.transpose();
    Matrix::from_fn(a.rows(), b.cols(), |i, j| dot_f32_acc(a.row(i), bt.row(j)))
}

/// `A · Bᵀ` with accumulation in the element precision.
///
/// This is the natural operation for attention scores `S = Q · Kᵀ`: both `Q`
/// and `K` are stored row-major, so no transpose materialisation is needed.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn gemm_bt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.cols(), "gemm_bt inner dimension mismatch");
    Matrix::from_fn(a.rows(), b.rows(), |i, j| dot(a.row(i), b.row(j)))
}

/// Row-wise softmax (no max-subtraction, matching the hardware datapath),
/// computed in the element precision.
pub fn softmax_rows<T: Scalar>(m: &Matrix<T>) -> Matrix<T> {
    let mut out = m.clone();
    for i in 0..m.rows() {
        let row = out.row_mut(i);
        let mut denom = T::ZERO;
        for x in row.iter_mut() {
            *x = x.exp();
            denom = denom.add(*x);
        }
        if denom.to_f32() > 0.0 {
            for x in row.iter_mut() {
                *x = x.div(denom);
            }
        }
    }
    out
}

/// Numerically stable row-wise softmax computed in `f32`, for golden
/// references.
pub fn softmax_rows_stable(m: &Matrix<f32>) -> Matrix<f32> {
    let mut out = m.clone();
    for i in 0..m.rows() {
        swat_numeric::softmax::softmax_stable_in_place(out.row_mut(i));
    }
    out
}

/// Blocked GEMM with `f32` accumulation; same result as [`gemm_f32_acc`] up
/// to floating-point reassociation, but cache-friendly for the larger
/// matrices in the benchmark harness.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
#[allow(clippy::needless_range_loop)] // blocked-kernel indexing is the idiom here
pub fn gemm_blocked(a: &Matrix<f32>, b: &Matrix<f32>, block: usize) -> Matrix<f32> {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    assert!(block > 0, "block size must be positive");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f32; m * n];
    for i0 in (0..m).step_by(block) {
        for k0 in (0..k).step_by(block) {
            for j0 in (0..n).step_by(block) {
                for i in i0..(i0 + block).min(m) {
                    let arow = a.row(i);
                    for kk in k0..(k0 + block).min(k) {
                        let aik = arow[kk];
                        let brow = b.row(kk);
                        let orow = &mut out[i * n..(i + 1) * n];
                        for j in j0..(j0 + block).min(n) {
                            orow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
    Matrix::from_vec(m, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_numeric::F16;

    fn small() -> (Matrix<f32>, Matrix<f32>) {
        let a = Matrix::from_rows(&[&[1.0f32, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let b = Matrix::from_rows(&[&[7.0f32, 8.0][..], &[9.0, 10.0][..], &[11.0, 12.0][..]]);
        (a, b)
    }

    #[test]
    fn gemm_known_result() {
        let (a, b) = small();
        let c = gemm(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn gemm_identity_is_noop() {
        let (a, _) = small();
        let id = Matrix::identity(3);
        assert_eq!(gemm(&a, &id), a);
    }

    #[test]
    fn gemm_bt_matches_explicit_transpose() {
        let (a, b) = small();
        let bt = b.transpose();
        assert_eq!(gemm_bt(&a, &bt), gemm(&a, &b));
    }

    #[test]
    fn gemm_f32_acc_matches_for_f32() {
        let (a, b) = small();
        assert_eq!(gemm_f32_acc(&a, &b), gemm(&a, &b));
    }

    #[test]
    fn gemm_blocked_matches_naive() {
        let a = Matrix::from_fn(17, 13, |i, j| ((i * 13 + j) % 7) as f32 - 3.0);
        let b = Matrix::from_fn(13, 19, |i, j| ((i * 19 + j) % 5) as f32 - 2.0);
        let naive = gemm(&a, &b);
        for block in [1, 2, 4, 8, 64] {
            let blocked = gemm_blocked(&a, &b, block);
            assert!(naive.max_abs_diff(&blocked) < 1e-4, "block {block}");
        }
    }

    #[test]
    fn f16_gemm_rounds_accumulation() {
        // Accumulating 4096 ones overflows nothing but loses precision after
        // 2048 in binary16 (ULP grows to 2 at 2048): 2048 + 1 -> 2048.
        let n = 4096;
        let a = Matrix::from_fn(1, n, |_, _| F16::ONE);
        let b = Matrix::from_fn(n, 1, |_, _| F16::ONE);
        let c = gemm(&a, &b);
        assert_eq!(c.get(0, 0).to_f32(), 2048.0, "f16 accumulator saturates");
        let c32 = gemm_f32_acc(&a, &b);
        assert_eq!(c32.get(0, 0), n as f32, "f32 accumulator is exact");
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let m = Matrix::from_fn(5, 9, |i, j| ((i + j) % 4) as f32 * 0.7 - 1.0);
        let s = softmax_rows(&m);
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn stable_softmax_agrees_with_plain() {
        let m = Matrix::from_fn(3, 7, |i, j| (i as f32 - j as f32) * 0.3);
        let a = softmax_rows(&m);
        let b = softmax_rows_stable(&m);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_shape_mismatch_panics() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(2, 3);
        let _ = gemm(&a, &b);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0f32, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot_f32_acc(&[1.0f32, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn empty_matrices() {
        let a = Matrix::<f32>::zeros(0, 5);
        let b = Matrix::<f32>::zeros(5, 0);
        let c = gemm(&a, &b);
        assert_eq!(c.shape(), (0, 0));
    }
}
