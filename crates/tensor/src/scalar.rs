//! The [`Scalar`] trait: the numeric element types the simulator supports.

use swat_numeric::F16;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for swat_numeric::F16 {}
}

/// Element type of a [`crate::Matrix`].
///
/// Sealed: the set of supported scalars (`f32`, `f64`, [`F16`]) is fixed by
/// this crate, mirroring the datatypes the SWAT hardware configurations
/// support (FP16 and FP32; `f64` exists for golden references).
///
/// All arithmetic goes through these methods so that binary16 rounds after
/// every operation, exactly like the FPGA datapath.
///
/// # Examples
///
/// ```
/// use swat_tensor::Scalar;
///
/// fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
///     a.iter().zip(b).fold(T::ZERO, |acc, (&x, &y)| acc.add(x.mul(y)))
/// }
/// assert_eq!(dot(&[1.0f32, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub trait Scalar:
    Copy + PartialEq + PartialOrd + core::fmt::Debug + Send + Sync + 'static + sealed::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Human-readable name of the precision ("fp16", "fp32", "fp64").
    const NAME: &'static str;
    /// Bytes occupied by one element in memory traffic accounting.
    const BYTES: usize;

    /// Converts from `f32`, rounding if necessary.
    fn from_f32(x: f32) -> Self;
    /// Converts to `f32` (exact for f32 and F16; rounds for f64).
    fn to_f32(self) -> f32;
    /// Addition in this precision.
    fn add(self, rhs: Self) -> Self;
    /// Subtraction in this precision.
    fn sub(self, rhs: Self) -> Self;
    /// Multiplication in this precision.
    fn mul(self, rhs: Self) -> Self;
    /// Division in this precision.
    fn div(self, rhs: Self) -> Self;
    /// Exponential in this precision.
    fn exp(self) -> Self;
    /// Maximum (NaN loses).
    fn max(self, rhs: Self) -> Self;
    /// Returns `true` if the value is finite.
    fn is_finite(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    const NAME: &'static str = "fp32";
    const BYTES: usize = 4;

    #[inline]
    fn from_f32(x: f32) -> f32 {
        x
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn add(self, rhs: f32) -> f32 {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: f32) -> f32 {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: f32) -> f32 {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: f32) -> f32 {
        self / rhs
    }
    #[inline]
    fn exp(self) -> f32 {
        f32::exp(self)
    }
    #[inline]
    fn max(self, rhs: f32) -> f32 {
        f32::max(self, rhs)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    const NAME: &'static str = "fp64";
    const BYTES: usize = 8;

    #[inline]
    fn from_f32(x: f32) -> f64 {
        f64::from(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn add(self, rhs: f64) -> f64 {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: f64) -> f64 {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: f64) -> f64 {
        self / rhs
    }
    #[inline]
    fn exp(self) -> f64 {
        f64::exp(self)
    }
    #[inline]
    fn max(self, rhs: f64) -> f64 {
        f64::max(self, rhs)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Scalar for F16 {
    const ZERO: F16 = F16::ZERO;
    const ONE: F16 = F16::ONE;
    const NAME: &'static str = "fp16";
    const BYTES: usize = 2;

    #[inline]
    fn from_f32(x: f32) -> F16 {
        F16::from_f32(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: F16) -> F16 {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        self * rhs
    }
    #[inline]
    fn div(self, rhs: F16) -> F16 {
        self / rhs
    }
    #[inline]
    fn exp(self) -> F16 {
        F16::exp(self)
    }
    #[inline]
    fn max(self, rhs: F16) -> F16 {
        F16::max(self, rhs)
    }
    #[inline]
    fn is_finite(self) -> bool {
        F16::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: Scalar>() {
        assert_eq!(T::ZERO.add(T::ONE).to_f32(), 1.0);
        assert_eq!(T::ONE.mul(T::ONE).to_f32(), 1.0);
        assert_eq!(T::ONE.sub(T::ONE).to_f32(), 0.0);
        assert_eq!(T::ONE.div(T::ONE).to_f32(), 1.0);
        assert!((T::ZERO.exp().to_f32() - 1.0).abs() < 1e-6);
        assert_eq!(T::ZERO.max(T::ONE).to_f32(), 1.0);
        assert!(T::ONE.is_finite());
        assert!(!T::NAME.is_empty());
        assert!(T::BYTES >= 2);
    }

    #[test]
    fn all_scalars_behave() {
        exercise::<f32>();
        exercise::<f64>();
        exercise::<F16>();
    }

    #[test]
    fn f16_scalar_rounds() {
        let big = F16::from_f32(1024.0);
        let tiny = F16::from_f32(0.125);
        // 1024 + 0.125 rounds back to 1024 in binary16 (ULP at 1024 is 1.0,
        // and 0.125 < half an ULP).
        assert_eq!(Scalar::add(big, tiny).to_f32(), 1024.0);
        // ...but not in f32.
        assert_ne!(1024.0f32 + 0.125, 1024.0);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(<F16 as Scalar>::BYTES, 2);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
    }
}
