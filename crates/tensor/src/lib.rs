//! A minimal row-major matrix library with precision-aware GEMM.
//!
//! The SWAT reproduction needs exactly the linear algebra an attention
//! accelerator exercises: dense matrix products (`Q·Kᵀ`, `S'·V`, linear
//! layers), row-wise softmax, transposes, and element-wise maps — over both
//! `f32` and software binary16 ([`swat_numeric::F16`]). Nothing more, so we
//! build it rather than pull in a tensor framework.
//!
//! Precision handling matters here: the FPGA's FP16 MAC accumulates in
//! binary16 (rounding after every multiply and every add), while a software
//! reference accumulates in `f32`/`f64`. [`ops::gemm`] follows the element
//! type (hardware-faithful); [`ops::gemm_f32_acc`] accumulates in `f32`
//! regardless of the element type (software-reference behaviour).
//!
//! # Examples
//!
//! ```
//! use swat_tensor::{Matrix, ops};
//!
//! let a = Matrix::from_rows(&[&[1.0f32, 2.0][..], &[3.0, 4.0][..]]);
//! let b = Matrix::identity(2);
//! let c = ops::gemm(&a, &b);
//! assert_eq!(c, a);
//! ```

pub mod matrix;
pub mod ops;
pub mod scalar;
pub mod solve;

pub use matrix::Matrix;
pub use scalar::Scalar;
