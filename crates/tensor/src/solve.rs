//! Symmetric positive-definite linear solves (Cholesky), used by the
//! closed-form ridge-regression readout in the accuracy-proxy experiments.

use crate::matrix::Matrix;
use core::fmt;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefiniteError {
    /// The pivot index where factorisation failed.
    pub pivot: usize,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefiniteError {}

/// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, computed in `f64` for robustness.
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] if a pivot is non-positive.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix<f64>) -> Result<Matrix<f64>, NotPositiveDefiniteError> {
    assert_eq!(a.rows(), a.cols(), "cholesky needs a square matrix");
    let n = a.rows();
    let mut l = Matrix::<f64>::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NotPositiveDefiniteError { pivot: i });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A·x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] if `A` is not positive definite.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
#[allow(clippy::needless_range_loop)] // substitution loops index y/x by construction
pub fn solve_spd(a: &Matrix<f64>, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefiniteError> {
    assert_eq!(a.rows(), b.len(), "rhs length must match matrix size");
    let l = cholesky(a)?;
    let n = b.len();
    // Forward substitution: L·y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * y[k];
        }
        y[i] = sum / l.get(i, i);
    }
    // Back substitution: Lᵀ·x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

/// Ridge regression: solves `(XᵀX + λI)·w = Xᵀ·y` in `f64`.
///
/// Rows of `x` are samples; `y` is one target per sample. Returns the
/// weight vector `w` with `x.cols()` entries.
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] if the regularised normal matrix
/// is numerically singular (practically impossible for `lambda > 0`).
///
/// # Panics
///
/// Panics if `y.len() != x.rows()` or `lambda < 0`.
#[allow(clippy::needless_range_loop)] // Gram accumulation indexes rows and rhs together
pub fn ridge_fit(
    x: &Matrix<f32>,
    y: &[f32],
    lambda: f64,
) -> Result<Vec<f64>, NotPositiveDefiniteError> {
    assert_eq!(x.rows(), y.len(), "one target per sample");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    let (n, d) = x.shape();
    // Normal matrix XᵀX + λI in f64.
    let mut gram = Matrix::<f64>::zeros(d, d);
    for s in 0..n {
        let row = x.row(s);
        for i in 0..d {
            let xi = f64::from(row[i]);
            for j in 0..=i {
                let v = gram.get(i, j) + xi * f64::from(row[j]);
                gram.set(i, j, v);
            }
        }
    }
    for i in 0..d {
        for j in (i + 1)..d {
            gram.set(i, j, gram.get(j, i));
        }
        gram.set(i, i, gram.get(i, i) + lambda);
    }
    // Xᵀy.
    let mut rhs = vec![0.0f64; d];
    for s in 0..n {
        let row = x.row(s);
        for i in 0..d {
            rhs[i] += f64::from(row[i]) * f64::from(y[s]);
        }
    }
    solve_spd(&gram, &rhs)
}

/// Applies a ridge weight vector: `x · w`.
///
/// # Panics
///
/// Panics if `w.len() != x.cols()`.
pub fn ridge_predict(x: &Matrix<f32>, w: &[f64]) -> Vec<f64> {
    assert_eq!(x.cols(), w.len(), "weight dimension mismatch");
    (0..x.rows())
        .map(|i| x.row(i).iter().zip(w).map(|(a, b)| f64::from(*a) * b).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_numeric::SplitMix64;

    fn spd(n: usize, seed: u64) -> Matrix<f64> {
        // A = B·Bᵀ + n·I is SPD for any B.
        let mut rng = SplitMix64::new(seed);
        let b = Matrix::<f64>::from_fn(n, n, |_, _| f64::from(rng.next_gaussian()));
        let mut a = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b.get(i, k) * b.get(j, k);
                }
                a.set(i, j, s + if i == j { n as f64 } else { 0.0 });
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(8, 1);
        let l = cholesky(&a).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let mut s = 0.0;
                for k in 0..8 {
                    s += l.get(i, k) * l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-9, "({i},{j})");
            }
            // L is lower triangular.
            for j in (i + 1)..8 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(6, 2);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let b: Vec<f64> = (0..6)
            .map(|i| (0..6).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = solve_spd(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut a = Matrix::<f64>::identity(3);
        a.set(2, 2, -1.0);
        assert!(cholesky(&a).is_err());
        assert_eq!(cholesky(&a).unwrap_err().pivot, 2);
    }

    #[test]
    fn ridge_fits_a_linear_function() {
        let mut rng = SplitMix64::new(3);
        let n = 200;
        let d = 5;
        let w_true = [0.5f32, -1.0, 2.0, 0.0, 0.25];
        let x = Matrix::from_fn(n, d, |_, _| rng.next_gaussian());
        let y: Vec<f32> = (0..n)
            .map(|i| {
                x.row(i)
                    .iter()
                    .zip(&w_true)
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    + 0.01 * rng.next_gaussian()
            })
            .collect();
        let w = ridge_fit(&x, &y, 1e-3).unwrap();
        for (got, want) in w.iter().zip(&w_true) {
            assert!((got - f64::from(*want)).abs() < 0.05, "{got} vs {want}");
        }
        // Predictions track targets.
        let pred = ridge_predict(&x, &w);
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - f64::from(*t)).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(mse < 1e-3, "mse {mse}");
    }

    #[test]
    fn ridge_regularization_shrinks_weights() {
        let mut rng = SplitMix64::new(4);
        let x = Matrix::from_fn(50, 3, |_, _| rng.next_gaussian());
        let y: Vec<f32> = (0..50).map(|i| x.get(i, 0)).collect();
        let w_small = ridge_fit(&x, &y, 1e-6).unwrap();
        let w_big = ridge_fit(&x, &y, 1e3).unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(&w_big) < norm(&w_small));
    }
}
