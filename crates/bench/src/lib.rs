//! Shared plumbing for the table/figure reproduction binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` that regenerates it:
//!
//! | Binary    | Reproduces |
//! |-----------|------------|
//! | `fig1`    | Figure 1 — FLOPs/MOPs breakdown vs input length |
//! | `fig2`    | Figure 2 — sliding-chunks redundancy, formula vs measured |
//! | `fig3`    | Figure 3 — execution time & memory vs GPU dense / sliding chunks |
//! | `fig8`    | Figure 8 — speedup of SWAT over BTF-1/BTF-2 |
//! | `fig9`    | Figure 9 — energy efficiency vs Butterfly and GPU |
//! | `table1`  | Table 1 — pipeline stage timing |
//! | `table2`  | Table 2 — FPGA resource utilisation |
//! | `table3`  | Table 3 — LRA accuracy gains + the fidelity proxy |
//! | `table4`  | Table 4 — ImageNet Top-1 records |
//! | `ablations` | DESIGN.md §6 — dataflow ablation study |
//! | `stability` | extension — raw-exp fusion vs online-max softmax in FP16 |
//! | `precision` | extension — binary16 vs Q-format fixed point |
//! | `accuracy_proxy` | extension — trained ridge-readout accuracy per pattern |
//! | `gantt`   | ASCII pipeline-occupancy view of the Table 1 schedule |
//! | `serve_sweep` | extension — multi-card request-serving sweep over declarative scenario specs, emits `BENCH_serve.json` |
//! | `capacity_plan` | extension — deterministic capacity-planning autotuner (cost-model-pruned search, Pareto frontier), emits `BENCH_plan.json` |
//! | `kernel_profile` | extension — event-kernel self-profiling (events by kind, peaks, events/sec), emits `BENCH_kernel.json` |
//!
//! Criterion micro-benchmarks of the actual kernels live in `benches/`.

use std::fmt::Display;

/// A deferred simulation cell for [`run_cells`]: owns everything it needs
/// so the pool can run it on any worker thread.
pub type Cell<T> = Box<dyn FnOnce() -> T + Send>;

/// One executed cell: the (deterministic) value it produced plus the one
/// non-deterministic side channel — the cell's own wall-clock, which only
/// ever reaches stderr via [`scenario_timing`].
pub struct CellOut<T> {
    /// Whatever the cell computed (a report, a tuned point, …).
    pub value: T,
    /// The cell's wall-clock seconds *on its worker*. Summing these over
    /// a scenario gives CPU-seconds regardless of `--jobs`, so timing
    /// lines stay meaningful — and comparable — at any parallelism.
    pub wall_s: f64,
}

/// Runs every cell on a scoped thread pool of `jobs` workers and returns
/// the results indexed exactly like the input. Workers claim cells from a
/// shared atomic cursor, so a slow cell never blocks an idle worker; with
/// `--jobs 1` the cells run in order on one worker. Nothing downstream
/// can observe the execution order: all output assembly happens after the
/// scope joins, reading this vector in cell-index order.
///
/// Shared by `serve_sweep` (sweep cells) and `capacity_plan` (autotuner
/// cells): both get per-cell wall-clock measured inside the worker, so
/// [`scenario_timing`]'s summed CPU-seconds cover autotuner-launched
/// cells exactly like hand-enumerated sweep cells.
pub fn run_cells<T: Send>(cells: Vec<Cell<T>>, jobs: usize) -> Vec<CellOut<T>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let queue: Vec<Mutex<Option<Cell<T>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<CellOut<T>>>> = queue.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(queue.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= queue.len() {
                    break;
                }
                let cell = queue[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each cell runs once");
                let started = std::time::Instant::now();
                let value = cell();
                *slots[i].lock().unwrap() = Some(CellOut {
                    value,
                    wall_s: started.elapsed().as_secs_f64(),
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
        .collect()
}

/// Reports a scenario's (or autotuner generation's) compute cost to
/// stderr. `wall` is the sum of the per-cell wall-clock times from
/// [`run_cells`] — CPU-seconds under `--jobs N`, elapsed time under
/// `--jobs 1`. stdout (the tables) and the JSON artifacts stay
/// byte-identical — CI's sha-compare and any `2>/dev/null` consumer are
/// unaffected.
pub fn scenario_timing(scenario: &str, runs: usize, events: u64, wall: f64) {
    let rate = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    eprintln!(
        "timing: {scenario:<14} {runs:>2} runs  {events:>9} kernel events  \
         {wall:>6.2} s wall  {rate:>9.0} events/s"
    );
}

/// Prints a right-aligned table: a header row then data rows, columns sized
/// to fit.
pub fn print_table<R: AsRef<[String]>>(headers: &[&str], rows: &[R]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.as_ref().iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    let total: usize = widths.iter().sum::<usize>() + 3 * ncols + 1;
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row.as_ref().to_vec());
    }
}

/// Formats a float with engineering-style precision for tables.
pub fn fmt_val(x: impl Into<f64>) -> String {
    let x: f64 = x.into();
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats seconds as milliseconds.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Formats bytes as mebibytes.
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as "12.3x".
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.1}x")
}

/// The input-length sweep used by Figures 3, 8 and 9.
pub const SWEEP_LENGTHS: [usize; 5] = [1024, 2048, 4096, 8192, 16384];

/// The extended sweep of Figure 3 (starts at 512).
pub const FIG3_LENGTHS: [usize; 6] = [512, 1024, 2048, 4096, 8192, 16384];

/// Prints a section banner.
pub fn banner(title: impl Display) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_val(0.0), "0");
        assert_eq!(fmt_val(123.4), "123");
        assert_eq!(fmt_val(1.234), "1.23");
        assert_eq!(fmt_val(0.1234), "0.1234");
        assert_eq!(fmt_ms(0.0015), "1.500");
        assert_eq!(fmt_mib(1024 * 1024), "1.0");
        assert_eq!(fmt_ratio(6.66), "6.7x");
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }
}
