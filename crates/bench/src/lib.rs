//! Shared plumbing for the table/figure reproduction binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` that regenerates it:
//!
//! | Binary    | Reproduces |
//! |-----------|------------|
//! | `fig1`    | Figure 1 — FLOPs/MOPs breakdown vs input length |
//! | `fig2`    | Figure 2 — sliding-chunks redundancy, formula vs measured |
//! | `fig3`    | Figure 3 — execution time & memory vs GPU dense / sliding chunks |
//! | `fig8`    | Figure 8 — speedup of SWAT over BTF-1/BTF-2 |
//! | `fig9`    | Figure 9 — energy efficiency vs Butterfly and GPU |
//! | `table1`  | Table 1 — pipeline stage timing |
//! | `table2`  | Table 2 — FPGA resource utilisation |
//! | `table3`  | Table 3 — LRA accuracy gains + the fidelity proxy |
//! | `table4`  | Table 4 — ImageNet Top-1 records |
//! | `ablations` | DESIGN.md §6 — dataflow ablation study |
//! | `stability` | extension — raw-exp fusion vs online-max softmax in FP16 |
//! | `precision` | extension — binary16 vs Q-format fixed point |
//! | `accuracy_proxy` | extension — trained ridge-readout accuracy per pattern |
//! | `gantt`   | ASCII pipeline-occupancy view of the Table 1 schedule |
//! | `serve_sweep` | extension — multi-card request-serving sweep, emits `BENCH_serve.json` |
//! | `kernel_profile` | extension — event-kernel self-profiling (events by kind, peaks, events/sec), emits `BENCH_kernel.json` |
//!
//! Criterion micro-benchmarks of the actual kernels live in `benches/`.

use std::fmt::Display;

/// Prints a right-aligned table: a header row then data rows, columns sized
/// to fit.
pub fn print_table<R: AsRef<[String]>>(headers: &[&str], rows: &[R]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.as_ref().iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    let total: usize = widths.iter().sum::<usize>() + 3 * ncols + 1;
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row.as_ref().to_vec());
    }
}

/// Formats a float with engineering-style precision for tables.
pub fn fmt_val(x: impl Into<f64>) -> String {
    let x: f64 = x.into();
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats seconds as milliseconds.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Formats bytes as mebibytes.
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as "12.3x".
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.1}x")
}

/// The input-length sweep used by Figures 3, 8 and 9.
pub const SWEEP_LENGTHS: [usize; 5] = [1024, 2048, 4096, 8192, 16384];

/// The extended sweep of Figure 3 (starts at 512).
pub const FIG3_LENGTHS: [usize; 6] = [512, 1024, 2048, 4096, 8192, 16384];

/// Prints a section banner.
pub fn banner(title: impl Display) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_val(0.0), "0");
        assert_eq!(fmt_val(123.4), "123");
        assert_eq!(fmt_val(1.234), "1.23");
        assert_eq!(fmt_val(0.1234), "0.1234");
        assert_eq!(fmt_ms(0.0015), "1.500");
        assert_eq!(fmt_mib(1024 * 1024), "1.0");
        assert_eq!(fmt_ratio(6.66), "6.7x");
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }
}
