//! Fleet-serving sweep: request streams through SWAT fleets under every
//! (scenario × arrival process × dispatch policy) combination, emitting
//! `BENCH_serve.json`.
//!
//! Three scenarios exercise `swat-serve` end to end:
//!
//! 1. **homogeneous** — the PR 1 baseline: 6 dual-pipeline FP16 cards,
//!    Poisson/bursty/diurnal production traffic, all four policies;
//! 2. **heterogeneous** — a mixed fleet (4 dual-pipeline FP16 cards next
//!    to 4 single-pipeline FP32 cards), where policies must weigh
//!    per-card service-time estimates;
//! 3. **priority** — bursty overload with and without admission control
//!    (background shed at queue depth 32), reported per priority class.
//!
//! Output is bitwise identical for a fixed `--seed`.
//!
//! ```text
//! cargo run --release -p swat-bench --bin serve_sweep [seed] [requests]
//! ```
//!
//! `requests` (default 10 000) scales every run; CI smoke-tests the
//! binary at 500.

use swat_bench::{banner, print_table};
use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::json::Json;
use swat_serve::metrics::ServeReport;
use swat_serve::policy::{all_policies, LeastLoaded};
use swat_serve::sim::{AdmissionControl, Simulation, TrafficSpec};
use swat_workloads::RequestMix;

/// Default requests per sweep cell.
const DEFAULT_REQUESTS: usize = 10_000;

fn fleet_json(fleet: &FleetConfig) -> Json {
    Json::obj([
        ("cards", Json::Int(fleet.cards() as i64)),
        ("pipelines", Json::Int(fleet.total_pipelines() as i64)),
        (
            "groups",
            Json::arr(fleet.groups.iter().map(|g| {
                Json::obj([
                    ("count", Json::Int(g.count as i64)),
                    ("design", Json::Str(g.design())),
                    ("memory_gbps", Json::Num(g.memory.bytes_per_sec() / 1e9)),
                ])
            })),
        ),
    ])
}

fn run_cell(
    fleet: &FleetConfig,
    arrivals: ArrivalProcess,
    policy: &mut dyn swat_serve::DispatchPolicy,
    admission: AdmissionControl,
    seed: u64,
    requests: usize,
) -> ServeReport {
    let spec = TrafficSpec {
        arrivals,
        mix: RequestMix::Production,
        seed,
    };
    Simulation::new(fleet)
        .arrivals_label(format!("{}/{}", arrivals.name(), spec.mix.name()))
        .admission(admission)
        .run(policy, &spec.requests(requests))
}

/// One run's JSON, annotated with the inputs the report alone cannot
/// recover: the arrival process's long-run offered load and the
/// admission setting the cell ran under (two priority-scenario runs are
/// otherwise indistinguishable by any recorded field).
fn annotated_run(report: &ServeReport, arrivals: ArrivalProcess, admission: &str) -> Json {
    match report.to_json() {
        Json::Obj(mut pairs) => {
            pairs.insert(2, ("offered_rps".into(), Json::Num(arrivals.mean_rate())));
            pairs.insert(3, ("admission".into(), Json::Str(admission.into())));
            Json::Obj(pairs)
        }
        other => other,
    }
}

fn summary_row(scenario: &str, report: &ServeReport) -> Vec<String> {
    vec![
        scenario.to_string(),
        report.arrivals.clone(),
        report.policy.clone(),
        format!("{:.1}", report.throughput_rps),
        format!("{:.1}", report.latency.p50 * 1e3),
        format!("{:.1}", report.latency.p95 * 1e3),
        format!("{:.1}", report.latency.p99 * 1e3),
        format!("{:.0}%", report.fleet_utilization() * 100.0),
        format!("{}", report.queue.max_depth),
        format!("{}", report.slo_violations),
        format!("{}", report.rejected),
        format!("{}", report.weight_swaps()),
        format!("{:.1}", report.energy_joules),
    ]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(0x5EED);
    let requests: usize = args
        .next()
        .map(|s| s.parse().expect("requests must be an integer"))
        .unwrap_or(DEFAULT_REQUESTS);

    // The production mix averages ≈0.6 s of single-pipeline service per
    // request, so 12 FP16 pipelines sustain ≈20 rps. Rates target ≈70%
    // mean utilization — with transient overload inside bursts (4× base)
    // and at the diurnal peak (1.2× capacity), where queues visibly form.
    let homogeneous = FleetConfig::standard(6);
    let homogeneous_arrivals = [
        ArrivalProcess::poisson(14.0),
        ArrivalProcess::bursty(8.0),
        ArrivalProcess::diurnal(4.0, 24.0),
    ];
    // The mixed fleet trades two FP16 duals for four FP32 singles:
    // ≈11 FP16-equivalent pipelines, so rates scale down accordingly.
    let heterogeneous = FleetConfig::mixed_precision(4, 4);
    let heterogeneous_arrivals = [ArrivalProcess::poisson(12.0), ArrivalProcess::bursty(7.0)];
    // Priority scenario: sustained bursts past capacity, where admission
    // control earns its keep by shedding background filler.
    let priority_arrivals = ArrivalProcess::bursty(12.0);
    let background_cap = 32usize;

    banner(format!(
        "serve_sweep — {requests} requests/cell, 3 scenarios on FP16/FP32 fleets (seed {seed:#x})"
    ));

    let mut rows = Vec::new();
    let mut scenarios = Vec::new();

    // Scenario 1: homogeneous baseline.
    let mut runs = Vec::new();
    for arrivals in homogeneous_arrivals {
        for mut policy in all_policies() {
            let report = run_cell(
                &homogeneous,
                arrivals,
                &mut *policy,
                AdmissionControl::admit_all(),
                seed,
                requests,
            );
            rows.push(summary_row("homogeneous", &report));
            runs.push(annotated_run(&report, arrivals, "admit-all"));
        }
    }
    scenarios.push(Json::obj([
        ("scenario", Json::Str("homogeneous".into())),
        ("fleet", fleet_json(&homogeneous)),
        ("admission_queue_cap", Json::Null),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 2: heterogeneous fleet.
    let mut runs = Vec::new();
    for arrivals in heterogeneous_arrivals {
        for mut policy in all_policies() {
            let report = run_cell(
                &heterogeneous,
                arrivals,
                &mut *policy,
                AdmissionControl::admit_all(),
                seed,
                requests,
            );
            rows.push(summary_row("heterogeneous", &report));
            runs.push(annotated_run(&report, arrivals, "admit-all"));
        }
    }
    scenarios.push(Json::obj([
        ("scenario", Json::Str("heterogeneous".into())),
        ("fleet", fleet_json(&heterogeneous)),
        ("admission_queue_cap", Json::Null),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 3: priority classes under overload, admission on vs off.
    let mut runs = Vec::new();
    let mut class_rows = Vec::new();
    for (label, admission) in [
        ("admit-all", AdmissionControl::admit_all()),
        (
            "shed-background",
            AdmissionControl::shed_background_at(background_cap),
        ),
    ] {
        let report = run_cell(
            &homogeneous,
            priority_arrivals,
            &mut LeastLoaded,
            admission,
            seed,
            requests,
        );
        rows.push(summary_row(&format!("priority/{label}"), &report));
        for class in &report.classes {
            let latency = class.latency;
            class_rows.push(vec![
                label.to_string(),
                class.class.name().to_string(),
                format!("{}", class.offered),
                format!("{}", class.completed),
                format!("{}", class.rejected),
                format!("{}", class.slo_violations),
                latency.map_or("-".into(), |l| format!("{:.1}", l.p50 * 1e3)),
                latency.map_or("-".into(), |l| format!("{:.1}", l.p95 * 1e3)),
                latency.map_or("-".into(), |l| format!("{:.1}", l.p99 * 1e3)),
            ]);
        }
        runs.push(annotated_run(&report, priority_arrivals, label));
    }
    scenarios.push(Json::obj([
        ("scenario", Json::Str("priority".into())),
        ("fleet", fleet_json(&homogeneous)),
        ("admission_queue_cap", Json::Int(background_cap as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    print_table(
        &[
            "scenario", "arrivals", "policy", "rps", "p50 ms", "p95 ms", "p99 ms", "util", "max q",
            "slo viol", "rejected", "swaps", "J",
        ],
        &rows,
    );
    println!("\npriority scenario, per class (least-loaded, bursty overload):");
    print_table(
        &[
            "admission",
            "class",
            "offered",
            "done",
            "shed",
            "slo viol",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
        &class_rows,
    );

    let doc = Json::obj([
        ("bench", Json::Str("serve_sweep".into())),
        ("seed", Json::UInt(seed)),
        ("requests_per_run", Json::Int(requests as i64)),
        ("mix", Json::Str(RequestMix::Production.name().into())),
        ("scenarios", Json::Arr(scenarios)),
    ]);

    let path = "BENCH_serve.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
