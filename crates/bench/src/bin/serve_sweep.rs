//! Fleet-serving sweep: request streams through SWAT fleets under every
//! (scenario × arrival process × dispatch policy) combination, emitting
//! `BENCH_serve.json`.
//!
//! Every sweep cell is a declarative [`ScenarioSpec`] value — fleet
//! shape, arrivals, traffic, policy, and controller knobs as plain data
//! (`swat_serve::scenario`) — and this binary is just the catalogue of
//! specs plus table/JSON assembly. New studies are new spec values, not
//! new simulation-driving code, and `--scenario <name>` runs any single
//! scenario's cells alone.
//!
//! Ten scenarios exercise `swat-serve` end to end:
//!
//! 1. **homogeneous** — the PR 1 baseline: 6 dual-pipeline FP16 cards,
//!    Poisson/bursty/diurnal production traffic, all four policies;
//! 2. **heterogeneous** — a mixed fleet (4 dual-pipeline FP16 cards next
//!    to 4 single-pipeline FP32 cards), where policies must weigh
//!    per-card service-time estimates;
//! 3. **priority** — bursty overload with and without admission control
//!    (background shed at queue depth 32), reported per priority class;
//! 4. **preemption** — bursty traffic with lulls (background dispatches,
//!    then interactive bursts find the pipelines occupied), with and
//!    without checkpoint-and-requeue preemption, preemption counts and
//!    the full preemption log in the JSON;
//! 5. **autoscale** — diurnal traffic on a static fleet vs the same fleet
//!    under the autoscaler, with scaling timelines and the idle-energy /
//!    SLO-attainment tradeoff in the JSON;
//! 6. **sharded** — whole-request dispatch vs split-aware dispatch
//!    (`max_shards = 4`) on a lightly loaded fleet, where fanning a
//!    request's independent attention jobs across idle pipelines cuts
//!    per-request latency (fan-out/fan-in), with shard counts in the
//!    JSON;
//! 7. **adaptive-width** — cost-model width selection vs fixed fan-out
//!    under a deep queue on bandwidth-binned cards (two co-located
//!    shards oversubscribe the memory interface ~1.9×): always fanning
//!    to 4 burns stretched pipeline-seconds the backlog needs, while
//!    the adaptive planner backs off to narrow plans — with per-width
//!    histograms and the predicted-vs-realized audit in the JSON;
//! 8. **sessions** — a flash crowd of multi-turn conversations served
//!    with and without sticky session→card affinity, with per-session
//!    latency over per-conversation means and Jain fairness in the
//!    JSON;
//! 9. **faults** — seeded card faults mid-diurnal: a card death with
//!    in-flight shards lost and a later revival, and a 2× calibration
//!    degrade the cost model re-snapshots — fault/recovery counts and
//!    degraded-mode service in the JSON, next to the fault-free
//!    control run;
//! 10. **decode** — a decode-heavy interactive mix (2–6 steps per
//!     request, seeded early exit) near saturation on the
//!     bandwidth-binned fleet: continuous batching (step remnants
//!     requeue and fresh requests overtake between steps) vs whole-job
//!     queueing (run-to-completion), adaptive vs fixed per-step width,
//!     and an early-exit-off control — with TTFT, steps/request, and
//!     early-exit rates in the JSON's `decode` blocks.
//!
//! Every sweep cell is an independent simulation with its own seeded
//! generator, so the cells run on the shared scoped thread pool
//! (`--jobs N`). Results are collected by cell index and every table and
//! JSON byte is assembled sequentially after the pool joins: output is
//! bitwise identical for a fixed `seed` regardless of `--jobs`.
//! Per-scenario timing and kernel events/sec go to **stderr** only, so
//! the tables on stdout and the JSON artifact stay byte-identical run to
//! run.
//!
//! ```text
//! cargo run --release -p swat-bench --bin serve_sweep \
//!     [--jobs N] [--scenario NAME] [seed] [requests]
//! ```
//!
//! `requests` (default 10 000) scales every run; CI smoke-tests the
//! binary at 500 and cross-checks `--jobs 4` against `--jobs 1`.

use swat_bench::{banner, print_table, run_cells, scenario_timing, Cell};
use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::json::Json;
use swat_serve::metrics::ServeReport;
use swat_serve::scale::AutoscalerConfig;
use swat_serve::scenario::{
    FaultKindSpec, FaultSpec, FleetSpec, PolicySpec, PreemptionSpec, ScenarioSpec, TrafficModel,
};
use swat_serve::sim::{AdmissionControl, DecodeBatching};
use swat_workloads::{DecodeMix, RequestMix, SessionProfile};

/// Default requests per sweep cell.
const DEFAULT_REQUESTS: usize = 10_000;

/// The four whole-request policies every baseline scenario sweeps, in
/// `all_policies()` order.
const ALL_POLICIES: [PolicySpec; 4] = [
    PolicySpec::Fifo,
    PolicySpec::LeastLoaded,
    PolicySpec::ShortestJobFirst,
    PolicySpec::HeadAffinity,
];

/// Which extra table (printed below the main summary) a scenario feeds.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ExtraTable {
    None,
    Fanout,
    Width,
    Autoscale,
    Priority,
    Sessions,
    Faults,
    Decode,
}

/// One sweep cell: the spec to run plus the labels the report alone
/// cannot recover (row label, admission / elastic annotations, and the
/// bare cell label the scenario's extra table keys on).
struct CellDef {
    spec: ScenarioSpec,
    row: String,
    admission: String,
    elastic: String,
    label: String,
}

impl CellDef {
    /// A baseline cell (no per-cell controls): row label is the scenario
    /// name, admission "admit-all", elastic "none".
    fn baseline(spec: ScenarioSpec, scenario: &str) -> CellDef {
        CellDef {
            spec,
            row: scenario.to_string(),
            admission: "admit-all".to_string(),
            elastic: "none".to_string(),
            label: String::new(),
        }
    }

    /// A control-A/B cell: row label `{scenario}/{label}`, the label
    /// annotated as the elastic setting.
    fn elastic(spec: ScenarioSpec, prefix: &str, label: &str) -> CellDef {
        CellDef {
            spec,
            row: format!("{prefix}/{label}"),
            admission: "admit-all".to_string(),
            elastic: label.to_string(),
            label: label.to_string(),
        }
    }

    /// An admission-A/B cell: row label `{scenario}/{label}`, the label
    /// annotated as the admission setting.
    fn admission(spec: ScenarioSpec, prefix: &str, label: &str) -> CellDef {
        CellDef {
            spec,
            row: format!("{prefix}/{label}"),
            admission: label.to_string(),
            elastic: "none".to_string(),
            label: label.to_string(),
        }
    }
}

/// One sweep scenario: a name, the shared fleet, scenario-level JSON
/// annotations (inserted between `fleet` and `runs`), the extra table it
/// feeds, and its cells.
struct ScenarioDef {
    name: &'static str,
    fleet: FleetSpec,
    extras: Vec<(&'static str, Json)>,
    table: ExtraTable,
    cells: Vec<CellDef>,
}

/// The full sweep catalogue: ten scenarios, 43 cells, every one a
/// [`ScenarioSpec`] value.
fn sweep_scenarios(seed: u64, requests: usize) -> Vec<ScenarioDef> {
    let mut defs = Vec::new();

    // A spec with the sweep-wide defaults filled in; scenarios override
    // the fields they study.
    let base = |name: String, fleet: FleetSpec, arrivals: ArrivalProcess| ScenarioSpec {
        name,
        fleet,
        arrivals,
        traffic: TrafficModel::mix(RequestMix::Production),
        seed,
        requests,
        ..ScenarioSpec::default()
    };

    // The production mix averages ≈0.6 s of single-pipeline service per
    // request, so 12 FP16 pipelines sustain ≈20 rps. Rates target ≈70%
    // mean utilization — with transient overload inside bursts (4× base)
    // and at the diurnal peak (1.2× capacity), where queues visibly form.
    let homogeneous = FleetSpec::standard(6);
    let homogeneous_arrivals = [
        ArrivalProcess::poisson(14.0),
        ArrivalProcess::bursty(8.0),
        ArrivalProcess::diurnal(4.0, 24.0),
    ];
    defs.push(ScenarioDef {
        name: "homogeneous",
        fleet: homogeneous.clone(),
        extras: vec![("admission_queue_cap", Json::Null)],
        table: ExtraTable::None,
        cells: homogeneous_arrivals
            .iter()
            .flat_map(|&arrivals| ALL_POLICIES.iter().map(move |&policy| (arrivals, policy)))
            .map(|(arrivals, policy)| {
                let spec = ScenarioSpec {
                    policy,
                    ..base("homogeneous".to_string(), homogeneous.clone(), arrivals)
                };
                CellDef::baseline(spec, "homogeneous")
            })
            .collect(),
    });

    // The mixed fleet trades two FP16 duals for four FP32 singles:
    // ≈11 FP16-equivalent pipelines, so rates scale down accordingly.
    let heterogeneous = FleetSpec::mixed_precision(4, 4);
    let heterogeneous_arrivals = [ArrivalProcess::poisson(12.0), ArrivalProcess::bursty(7.0)];
    defs.push(ScenarioDef {
        name: "heterogeneous",
        fleet: heterogeneous.clone(),
        extras: vec![("admission_queue_cap", Json::Null)],
        table: ExtraTable::None,
        cells: heterogeneous_arrivals
            .iter()
            .flat_map(|&arrivals| ALL_POLICIES.iter().map(move |&policy| (arrivals, policy)))
            .map(|(arrivals, policy)| {
                let spec = ScenarioSpec {
                    policy,
                    ..base("heterogeneous".to_string(), heterogeneous.clone(), arrivals)
                };
                CellDef::baseline(spec, "heterogeneous")
            })
            .collect(),
    });

    // Priority scenario: sustained bursts past capacity, where admission
    // control earns its keep by shedding background filler.
    let priority_arrivals = ArrivalProcess::bursty(12.0);
    let background_cap = 32usize;
    defs.push(ScenarioDef {
        name: "priority",
        fleet: homogeneous.clone(),
        extras: vec![("admission_queue_cap", Json::Int(background_cap as i64))],
        table: ExtraTable::Priority,
        cells: [
            ("admit-all", AdmissionControl::admit_all()),
            (
                "shed-background",
                AdmissionControl::shed_background_at(background_cap),
            ),
        ]
        .into_iter()
        .map(|(label, admission)| {
            let spec = ScenarioSpec {
                admission,
                ..base(
                    format!("priority/{label}"),
                    homogeneous.clone(),
                    priority_arrivals,
                )
            };
            CellDef::admission(spec, "priority", label)
        })
        .collect(),
    });

    // Preemption scenario: bursty traffic with real lulls — background
    // work gets dispatched between bursts, then interactive bursts arrive
    // to find the pipelines occupied, which is the only regime where
    // checkpoint-and-requeue has victims to take. Base rate well under
    // the two-card capacity (≈6.6 rps) so the lulls genuinely drain.
    let preemption_fleet = FleetSpec::standard(2);
    let preemption_arrivals = ArrivalProcess::bursty(2.5);
    let patience = 0.1f64;
    defs.push(ScenarioDef {
        name: "preemption",
        fleet: preemption_fleet.clone(),
        extras: vec![("preemption_wait_s", Json::Num(patience))],
        table: ExtraTable::None,
        cells: [
            ("run-to-completion", PreemptionSpec::Disabled),
            (
                "preempt-100ms",
                PreemptionSpec::AfterWait {
                    threshold_s: patience,
                },
            ),
        ]
        .into_iter()
        .map(|(label, preemption)| {
            let spec = ScenarioSpec {
                preemption,
                ..base(
                    format!("preemption/{label}"),
                    preemption_fleet.clone(),
                    preemption_arrivals,
                )
            };
            CellDef::elastic(spec, "preemption", label)
        })
        .collect(),
    });

    // Autoscale scenario: a compressed diurnal ramp on the 6-card fleet.
    // The static fleet pays idle power all "night", the elastic one parks
    // down to 2 cards and pays warm-up latency (and some SLO attainment)
    // on the morning ramp instead.
    let autoscale_arrivals = ArrivalProcess::diurnal(3.0, 22.0);
    let scaler_cfg = AutoscalerConfig::standard().with_min_cards(2);
    defs.push(ScenarioDef {
        name: "autoscale",
        fleet: homogeneous.clone(),
        extras: vec![(
            "autoscaler",
            Json::obj([
                ("min_cards", Json::Int(scaler_cfg.min_cards as i64)),
                (
                    "up_queue_per_card",
                    Json::Int(scaler_cfg.up_queue_per_card as i64),
                ),
                ("down_idle_s", Json::Num(scaler_cfg.down_idle_s)),
                ("warmup_s", Json::Num(scaler_cfg.warmup_s)),
            ]),
        )],
        table: ExtraTable::Autoscale,
        cells: [("static", None), ("autoscale-min2", Some(scaler_cfg))]
            .into_iter()
            .map(|(label, autoscale)| {
                let spec = ScenarioSpec {
                    autoscale,
                    ..base(
                        format!("autoscale/{label}"),
                        homogeneous.clone(),
                        autoscale_arrivals,
                    )
                };
                CellDef::elastic(spec, "autoscale", label)
            })
            .collect(),
    });

    // Sharded scenario: light load on the 4-card fleet leaves idle
    // pipelines at most dispatches — exactly when splitting a request's
    // independent attention jobs across them pays off in latency.
    let sharded_fleet = FleetSpec::standard(4);
    let sharded_arrivals = ArrivalProcess::poisson(6.0);
    let sharded_max = 4usize;
    defs.push(ScenarioDef {
        name: "sharded",
        fleet: sharded_fleet.clone(),
        extras: vec![("max_shards", Json::Int(sharded_max as i64))],
        table: ExtraTable::Fanout,
        cells: [
            ("whole", PolicySpec::LeastLoaded),
            (
                "sharded-4",
                PolicySpec::ShardedLeastLoaded {
                    max_shards: sharded_max,
                    adaptive: true,
                },
            ),
            ("whole", PolicySpec::ShortestJobFirst),
            (
                "sharded-4",
                PolicySpec::ShardedShortestJobFirst {
                    max_shards: sharded_max,
                    adaptive: true,
                },
            ),
        ]
        .into_iter()
        .map(|(label, policy)| {
            let spec = ScenarioSpec {
                policy,
                ..base(
                    format!("sharded/{label}"),
                    sharded_fleet.clone(),
                    sharded_arrivals,
                )
            };
            CellDef::elastic(spec, "sharded", label)
        })
        .collect(),
    });

    // Adaptive-width scenario: bandwidth-binned cards (1.2 GB/s against
    // the ~1.15 GB/s one FP16 pipeline streams), so two co-located shards
    // oversubscribe the interface and stretch ~1.9×. Interactive Poisson
    // load near the fixed policy's saturation point keeps the queue deep,
    // where pipeline-seconds are the scarce resource: fixed fan-out burns
    // the stretch on every wide dispatch, the cost-model planner prices
    // the backlog, backs off to narrow plans, and sustains the rate.
    let binned_fleet = FleetSpec::binned(4, 1.2e9);
    let adaptive_arrivals = ArrivalProcess::poisson(80.0);
    let adaptive_max = 4usize;
    defs.push(ScenarioDef {
        name: "adaptive-width",
        fleet: binned_fleet.clone(),
        extras: vec![("max_shards", Json::Int(adaptive_max as i64))],
        table: ExtraTable::Width,
        cells: [
            ("fixed-4", false, false),
            ("adaptive-4", true, false),
            ("fixed-4", false, true),
            ("adaptive-4", true, true),
        ]
        .into_iter()
        .map(|(label, adaptive, sjf)| {
            let policy = if sjf {
                PolicySpec::ShardedShortestJobFirst {
                    max_shards: adaptive_max,
                    adaptive,
                }
            } else {
                PolicySpec::ShardedLeastLoaded {
                    max_shards: adaptive_max,
                    adaptive,
                }
            };
            let spec = ScenarioSpec {
                policy,
                traffic: TrafficModel::mix(RequestMix::Interactive),
                ..base(
                    format!("adaptive/{label}"),
                    binned_fleet.clone(),
                    adaptive_arrivals,
                )
            };
            CellDef::elastic(spec, "adaptive", label)
        })
        .collect(),
    });

    // Sessions scenario: a flash crowd of conversations — session *starts*
    // spike 10× at the onset and relax over the decay — served with and
    // without sticky session→card residency. Sessions average ≈5 turns
    // (standard profile), so the cell sees roughly `requests` turns. Both
    // cells serve the identical tagged conversation trace (open-loop
    // arrivals make it policy-independent), so any difference is pure
    // dispatch.
    let session_fleet = FleetSpec::standard(4);
    let session_arrivals = ArrivalProcess::flash_crowd(2.0, 20.0, 30.0, 5.0);
    let session_profile = SessionProfile::standard();
    let affinity_cap = 64usize;
    let sessions_per_cell = (requests / 5).max(1);
    defs.push(ScenarioDef {
        name: "sessions",
        fleet: session_fleet.clone(),
        extras: vec![
            (
                "profile",
                Json::obj([
                    ("min_turns", Json::Int(session_profile.min_turns as i64)),
                    ("max_turns", Json::Int(session_profile.max_turns as i64)),
                    ("think_mean_s", Json::Num(session_profile.think_mean_s)),
                    ("heavy_pct", Json::Int(session_profile.heavy_pct as i64)),
                ]),
            ),
            ("sessions_per_run", Json::Int(sessions_per_cell as i64)),
            ("affinity_capacity_per_card", Json::Int(affinity_cap as i64)),
        ],
        table: ExtraTable::Sessions,
        cells: [
            ("affinity-off", PolicySpec::LeastLoaded),
            (
                "affinity-on",
                PolicySpec::SessionAffinity {
                    capacity_per_card: affinity_cap,
                },
            ),
        ]
        .into_iter()
        .map(|(label, policy)| {
            let spec = ScenarioSpec {
                policy,
                traffic: TrafficModel::Sessions {
                    profile: session_profile,
                },
                requests: sessions_per_cell,
                ..base(
                    format!("sessions/{label}"),
                    session_fleet.clone(),
                    session_arrivals,
                )
            };
            CellDef::elastic(spec, "sessions", label)
        })
        .collect(),
    });

    // Faults scenario: the same trace served fault-free, through a card
    // death (in-flight shards lost, remnants requeued, a revival later),
    // and through a 2× calibration degrade — all at seeded mid-diurnal
    // times (fractions of the trace span), so recovery happens under the
    // peak at any `requests`.
    let fault_fleet = FleetSpec::standard(4);
    let fault_arrivals = ArrivalProcess::diurnal(3.0, 14.0);
    defs.push(ScenarioDef {
        name: "faults",
        fleet: fault_fleet.clone(),
        extras: vec![],
        table: ExtraTable::Faults,
        cells: [
            ("fault-free", vec![]),
            (
                "card-death",
                vec![
                    FaultSpec {
                        at_frac: 0.4,
                        card: 0,
                        kind: FaultKindSpec::Kill,
                    },
                    FaultSpec {
                        at_frac: 0.7,
                        card: 0,
                        kind: FaultKindSpec::Revive { warmup_s: 2.0 },
                    },
                ],
            ),
            (
                "degrade-2x",
                vec![FaultSpec {
                    at_frac: 0.4,
                    card: 0,
                    kind: FaultKindSpec::Degrade { factor: 2.0 },
                }],
            ),
        ]
        .into_iter()
        .map(|(label, faults)| {
            let spec = ScenarioSpec {
                faults,
                ..base(
                    format!("faults/{label}"),
                    fault_fleet.clone(),
                    fault_arrivals,
                )
            };
            CellDef::elastic(spec, "faults", label)
        })
        .collect(),
    });

    // Decode scenario: the same bandwidth-binned fleet as adaptive-width,
    // but every request owes 2–6 decode steps (seeded early exit at 20%
    // per boundary, expected ≈2.9 steps), so ≈28 rps saturates where the
    // one-shot mix took 80. Poisson load just under that keeps the queue
    // deep enough that *when* a remnant re-enters matters: continuous
    // batching lets short fresh requests overtake a long decode between
    // its steps, whole-job queueing holds the card run-to-completion.
    let decode_arrivals = ArrivalProcess::poisson(24.0);
    let decode_steps = (2u32, 6u32);
    let decode_exit_prob = 0.2f64;
    let decode_max = 4usize;
    defs.push(ScenarioDef {
        name: "decode",
        fleet: binned_fleet.clone(),
        extras: vec![
            ("max_shards", Json::Int(decode_max as i64)),
            (
                "decode_mix",
                Json::obj([
                    ("min_steps", Json::Int(decode_steps.0 as i64)),
                    ("max_steps", Json::Int(decode_steps.1 as i64)),
                    ("exit_prob", Json::Num(decode_exit_prob)),
                ]),
            ),
        ],
        table: ExtraTable::Decode,
        cells: [
            ("continuous/adaptive-4", false, false, decode_exit_prob),
            ("whole-job/adaptive-4", true, false, decode_exit_prob),
            ("continuous/fixed-4", false, true, decode_exit_prob),
            ("continuous/no-exit", false, false, 0.0),
        ]
        .into_iter()
        .map(|(label, whole_job, fixed, exit_prob)| {
            let spec = ScenarioSpec {
                policy: PolicySpec::ShardedShortestJobFirst {
                    max_shards: decode_max,
                    adaptive: !fixed,
                },
                traffic: TrafficModel::Mix {
                    mix: RequestMix::Interactive,
                    decode: Some(DecodeMix {
                        min_steps: decode_steps.0,
                        max_steps: decode_steps.1,
                        exit_prob,
                    }),
                },
                batching: if whole_job {
                    DecodeBatching::WholeJob
                } else {
                    DecodeBatching::Continuous
                },
                ..base(
                    format!("decode/{label}"),
                    binned_fleet.clone(),
                    decode_arrivals,
                )
            };
            CellDef::elastic(spec, "decode", label)
        })
        .collect(),
    });

    defs
}

fn fleet_json(fleet: &FleetConfig) -> Json {
    Json::obj([
        ("cards", Json::Int(fleet.cards() as i64)),
        ("pipelines", Json::Int(fleet.total_pipelines() as i64)),
        (
            "groups",
            Json::arr(fleet.groups.iter().map(|g| {
                Json::obj([
                    ("count", Json::Int(g.count as i64)),
                    ("design", Json::Str(g.design())),
                    ("memory_gbps", Json::Num(g.memory.bytes_per_sec() / 1e9)),
                ])
            })),
        ),
    ])
}

/// One run's JSON, annotated with the inputs the report alone cannot
/// recover: the arrival process's long-run offered load, the admission
/// setting, and the elastic-control setting the cell ran under (two
/// priority- or preemption-scenario runs are otherwise indistinguishable
/// by any recorded field).
fn annotated_run(
    report: &ServeReport,
    arrivals: ArrivalProcess,
    admission: &str,
    elastic: &str,
) -> Json {
    match report.to_json() {
        Json::Obj(mut pairs) => {
            pairs.insert(2, ("offered_rps".into(), Json::Num(arrivals.mean_rate())));
            pairs.insert(3, ("admission".into(), Json::Str(admission.into())));
            pairs.insert(4, ("elastic".into(), Json::Str(elastic.into())));
            Json::Obj(pairs)
        }
        other => other,
    }
}

/// Formats an optional seconds value as milliseconds for the tables; a
/// fully-shed cell has no latency distribution and shows "-".
fn ms(value: Option<f64>) -> String {
    value.map_or("-".to_string(), |v| format!("{:.1}", v * 1e3))
}

fn summary_row(scenario: &str, report: &ServeReport) -> Vec<String> {
    vec![
        scenario.to_string(),
        report.arrivals.clone(),
        report.policy.clone(),
        format!("{:.1}", report.throughput_rps),
        ms(report.latency.map(|l| l.p50)),
        ms(report.latency.map(|l| l.p95)),
        ms(report.latency.map(|l| l.p99)),
        format!("{:.0}%", report.fleet_utilization() * 100.0),
        format!("{}", report.queue.max_depth),
        format!("{}", report.slo_violations),
        format!("{}", report.rejected),
        format!("{}", report.preemption_count()),
        format!("{}", report.scaling.len()),
        format!("{}", report.weight_swaps()),
        format!("{:.1}", report.total_energy_joules()),
    ]
}

/// Prints the usage line and exits with status 2 — unparseable arguments
/// should read as operator error, not a crash.
fn usage(problem: &str) -> ! {
    eprintln!("serve_sweep: {problem}");
    eprintln!("usage: serve_sweep [--jobs N] [--scenario NAME] [seed] [requests]");
    eprintln!("  --jobs N         worker threads for the sweep cells (default 1;");
    eprintln!("                   output is byte-identical for every N)");
    eprintln!("  --scenario NAME  run a single scenario's cells (default: all ten)");
    eprintln!("  seed             u64 sweep seed (default 0x5EED)");
    eprintln!(
        "  requests         requests per sweep cell (default {DEFAULT_REQUESTS}, must be > 0)"
    );
    eprintln!();
    eprintln!("sweeps ten scenarios: homogeneous, heterogeneous, priority, preemption,");
    eprintln!("autoscale, sharded, adaptive-width, sessions, faults, and decode (the");
    eprintln!("token-level step loop: batching-mode and width-discipline A/B cells).");
    std::process::exit(2);
}

fn main() {
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut jobs = 1usize;
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(rest) = arg.strip_prefix("--jobs") {
            let value = match rest.strip_prefix('=') {
                Some(v) => v.to_string(),
                None if rest.is_empty() => {
                    args.next().unwrap_or_else(|| usage("--jobs needs a value"))
                }
                _ => usage(&format!("unexpected argument {arg:?}")),
            };
            jobs = value.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("--jobs must be a positive integer, got {value:?}"))
            });
        } else if let Some(rest) = arg.strip_prefix("--scenario") {
            let value = match rest.strip_prefix('=') {
                Some(v) => v.to_string(),
                None if rest.is_empty() => args
                    .next()
                    .unwrap_or_else(|| usage("--scenario needs a value")),
                _ => usage(&format!("unexpected argument {arg:?}")),
            };
            filter = Some(value);
        } else if seed.is_none() {
            seed = Some(arg.parse().unwrap_or_else(|_| {
                usage(&format!("seed must be an unsigned integer, got {arg:?}"))
            }));
        } else if requests.is_none() {
            requests = Some(arg.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("requests must be a positive integer, got {arg:?}"))
            }));
        } else {
            usage(&format!("unexpected argument {arg:?}"));
        }
    }
    let seed = seed.unwrap_or(0x5EED);
    let requests = requests.unwrap_or(DEFAULT_REQUESTS);

    let mut defs = sweep_scenarios(seed, requests);
    if let Some(name) = &filter {
        let names = defs.iter().map(|d| d.name).collect::<Vec<_>>().join(", ");
        defs.retain(|d| d.name == name.as_str());
        if defs.is_empty() {
            usage(&format!("unknown scenario {name:?} (valid: {names})"));
        }
    }
    let total_cells: usize = defs.iter().map(|d| d.cells.len()).sum();

    banner(format!(
        "serve_sweep — {requests} requests/cell, {} scenarios / {total_cells} cells on \
         FP16/FP32 fleets (seed {seed:#x})",
        defs.len()
    ));

    // Phase 1: enqueue every cell as an owned closure over its spec.
    // Cell indices are contiguous per scenario, so phase 3 can assemble
    // rows, extra tables, and JSON in exactly the order the sequential
    // sweep used — the executed order (phase 2) is unobservable.
    let mut cells: Vec<Cell<(ServeReport, u64)>> = Vec::new();
    let mut ranges = Vec::new();
    for def in &defs {
        let start = cells.len();
        for cell in &def.cells {
            let spec = cell.spec.clone();
            cells.push(Box::new(move || {
                let (report, counters) = spec
                    .run_profiled()
                    .expect("sweep catalogue specs are valid");
                (report, counters.events_total())
            }));
        }
        ranges.push(start..cells.len());
    }

    // Phase 2: run the cells on the shared pool. Each is its own seeded
    // simulation, so the pool introduces no cross-cell state.
    let outs = run_cells(cells, jobs);

    // Phase 3: assemble every byte of stdout and JSON in the sequential
    // sweep's order.
    let mut rows = Vec::new();
    let mut scenarios = Vec::new();
    let mut fanout_rows = Vec::new();
    let mut width_rows = Vec::new();
    let mut tradeoff_rows = Vec::new();
    let mut class_rows = Vec::new();
    let mut session_rows = Vec::new();
    let mut fault_rows = Vec::new();
    let mut decode_rows = Vec::new();

    for (def, range) in defs.iter().zip(&ranges) {
        let mut runs = Vec::new();
        for (cell, out) in def.cells.iter().zip(&outs[range.clone()]) {
            let report = &out.value.0;
            rows.push(summary_row(&cell.row, report));
            runs.push(annotated_run(
                report,
                cell.spec.arrivals,
                &cell.admission,
                &cell.elastic,
            ));
            match def.table {
                ExtraTable::None => {}
                ExtraTable::Fanout => fanout_rows.push(vec![
                    report.policy.clone(),
                    format!("{}", report.sharded_requests),
                    format!("{}", report.max_shards),
                    ms(report.latency.map(|l| l.p50)),
                    ms(report.latency.map(|l| l.p99)),
                    format!("{:.2}%", report.slo_attainment() * 100.0),
                ]),
                ExtraTable::Width => {
                    let widths = report
                        .shard_widths
                        .iter()
                        .enumerate()
                        .map(|(w, n)| format!("{}:{n}", w + 1))
                        .collect::<Vec<_>>()
                        .join(" ");
                    width_rows.push(vec![
                        report.policy.clone(),
                        widths,
                        ms(report.latency.map(|l| l.p50)),
                        ms(report.latency.map(|l| l.p99)),
                        format!("{:.2}%", report.slo_attainment() * 100.0),
                        report
                            .cost_prediction
                            .map_or("-".to_string(), |p| format!("{:.1e}", p.max_error_s)),
                    ]);
                }
                ExtraTable::Autoscale => tradeoff_rows.push(vec![
                    cell.label.clone(),
                    format!("{}", report.scaling.len()),
                    format!("{:.1}", report.energy_joules),
                    format!("{:.1}", report.idle_energy_joules),
                    format!("{:.1}", report.total_energy_joules()),
                    format!("{:.2}%", report.slo_attainment() * 100.0),
                    ms(report.latency.map(|l| l.p99)),
                ]),
                ExtraTable::Priority => {
                    for class in &report.classes {
                        let latency = class.latency;
                        class_rows.push(vec![
                            cell.label.clone(),
                            class.class.name().to_string(),
                            format!("{}", class.offered),
                            format!("{}", class.completed),
                            format!("{}", class.rejected),
                            format!("{}", class.slo_violations),
                            ms(latency.map(|l| l.p50)),
                            ms(latency.map(|l| l.p95)),
                            ms(latency.map(|l| l.p99)),
                        ]);
                    }
                }
                ExtraTable::Sessions => {
                    let s = report.sessions.as_ref().expect("session traffic is tagged");
                    session_rows.push(vec![
                        report.policy.clone(),
                        format!("{}", s.sessions),
                        format!("{:.1}", s.mean_turns),
                        ms(s.latency.map(|l| l.p50)),
                        ms(s.latency.map(|l| l.p99)),
                        format!("{:.3}", s.fairness),
                    ]);
                }
                ExtraTable::Faults => {
                    let (deaths, degrades, revivals, lost, failed) = match &report.faults {
                        Some(f) => (
                            f.card_deaths,
                            f.degrades,
                            f.revivals,
                            f.shards_lost,
                            f.failed,
                        ),
                        None => (0, 0, 0, 0, 0),
                    };
                    fault_rows.push(vec![
                        cell.label.clone(),
                        format!("{deaths}"),
                        format!("{degrades}"),
                        format!("{revivals}"),
                        format!("{lost}"),
                        format!("{failed}"),
                        ms(report.latency.map(|l| l.p99)),
                        format!("{:.2}%", report.slo_attainment() * 100.0),
                    ]);
                }
                ExtraTable::Decode => {
                    let d = report
                        .decode
                        .as_ref()
                        .expect("decode traffic is multi-step");
                    decode_rows.push(vec![
                        cell.label.clone(),
                        format!("{:.2}", d.mean_steps),
                        format!("{:.0}%", d.early_exit_rate * 100.0),
                        ms(d.ttft.map(|l| l.p50)),
                        ms(d.ttft.map(|l| l.p99)),
                        ms(report.latency.map(|l| l.p50)),
                        ms(report.latency.map(|l| l.p99)),
                        format!("{:.2}%", report.slo_attainment() * 100.0),
                    ]);
                }
            }
        }
        let events = outs[range.clone()].iter().map(|o| o.value.1).sum::<u64>();
        let wall = outs[range.clone()].iter().map(|o| o.wall_s).sum::<f64>();
        scenario_timing(def.name, runs.len(), events, wall);
        let mut pairs = vec![
            ("scenario", Json::Str(def.name.into())),
            ("fleet", fleet_json(&def.fleet.config())),
        ];
        pairs.extend(def.extras.iter().cloned());
        pairs.push(("runs", Json::Arr(runs)));
        scenarios.push(Json::obj(pairs));
    }

    print_table(
        &[
            "scenario", "arrivals", "policy", "rps", "p50 ms", "p95 ms", "p99 ms", "util", "max q",
            "slo viol", "rejected", "preempt", "scale", "swaps", "J",
        ],
        &rows,
    );
    if !fanout_rows.is_empty() {
        println!("\nsharded scenario, fan-out vs whole-request (poisson, 4 cards):");
        print_table(
            &[
                "policy",
                "sharded reqs",
                "max shards",
                "p50 ms",
                "p99 ms",
                "slo attain",
            ],
            &fanout_rows,
        );
    }
    if !width_rows.is_empty() {
        println!(
            "\nadaptive-width scenario, fan-out discipline under a deep queue \
             (poisson, 4 bandwidth-binned cards):"
        );
        print_table(
            &[
                "policy",
                "width:count",
                "p50 ms",
                "p99 ms",
                "slo attain",
                "pred err s",
            ],
            &width_rows,
        );
    }
    if !tradeoff_rows.is_empty() {
        println!("\nautoscale scenario, energy vs SLO (least-loaded, diurnal ramp):");
        print_table(
            &[
                "fleet",
                "scale events",
                "active J",
                "idle J",
                "total J",
                "slo attain",
                "p99 ms",
            ],
            &tradeoff_rows,
        );
    }
    if !class_rows.is_empty() {
        println!("\npriority scenario, per class (least-loaded, bursty overload):");
        print_table(
            &[
                "admission",
                "class",
                "offered",
                "done",
                "shed",
                "slo viol",
                "p50 ms",
                "p95 ms",
                "p99 ms",
            ],
            &class_rows,
        );
    }
    if !session_rows.is_empty() {
        println!("\nsessions scenario, sticky affinity vs least-loaded (flash crowd, 4 cards):");
        print_table(
            &[
                "policy",
                "sessions",
                "mean turns",
                "sess p50 ms",
                "sess p99 ms",
                "jain",
            ],
            &session_rows,
        );
    }
    if !fault_rows.is_empty() {
        println!("\nfaults scenario, seeded card faults mid-diurnal (least-loaded, 4 cards):");
        print_table(
            &[
                "plan",
                "deaths",
                "degrades",
                "revivals",
                "shards lost",
                "failed",
                "p99 ms",
                "slo attain",
            ],
            &fault_rows,
        );
    }
    if !decode_rows.is_empty() {
        println!(
            "\ndecode scenario, step batching and width discipline near saturation \
             (sharded SJF, 4 bandwidth-binned cards):"
        );
        print_table(
            &[
                "cell",
                "mean steps",
                "exits",
                "ttft p50 ms",
                "ttft p99 ms",
                "p50 ms",
                "p99 ms",
                "slo attain",
            ],
            &decode_rows,
        );
    }

    let doc = Json::obj([
        ("bench", Json::Str("serve_sweep".into())),
        ("seed", Json::UInt(seed)),
        ("requests_per_run", Json::Int(requests as i64)),
        ("mix", Json::Str(RequestMix::Production.name().into())),
        ("scenarios", Json::Arr(scenarios)),
    ]);

    let path = "BENCH_serve.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
