//! Fleet-serving sweep: request streams through SWAT fleets under every
//! (scenario × arrival process × dispatch policy) combination, emitting
//! `BENCH_serve.json`.
//!
//! Ten scenarios exercise `swat-serve` end to end:
//!
//! 1. **homogeneous** — the PR 1 baseline: 6 dual-pipeline FP16 cards,
//!    Poisson/bursty/diurnal production traffic, all four policies;
//! 2. **heterogeneous** — a mixed fleet (4 dual-pipeline FP16 cards next
//!    to 4 single-pipeline FP32 cards), where policies must weigh
//!    per-card service-time estimates;
//! 3. **priority** — bursty overload with and without admission control
//!    (background shed at queue depth 32), reported per priority class;
//! 4. **preemption** — bursty traffic with lulls (background dispatches,
//!    then interactive bursts find the pipelines occupied), with and
//!    without checkpoint-and-requeue preemption, preemption counts and
//!    the full preemption log in the JSON;
//! 5. **autoscale** — diurnal traffic on a static fleet vs the same fleet
//!    under the autoscaler, with scaling timelines and the idle-energy /
//!    SLO-attainment tradeoff in the JSON;
//! 6. **sharded** — whole-request dispatch vs split-aware dispatch
//!    (`max_shards = 4`) on a lightly loaded fleet, where fanning a
//!    request's independent attention jobs across idle pipelines cuts
//!    per-request latency (fan-out/fan-in), with shard counts in the
//!    JSON;
//! 7. **adaptive-width** — cost-model width selection vs fixed fan-out
//!    under a deep queue on bandwidth-binned cards (two co-located
//!    shards oversubscribe the memory interface ~1.9×): always fanning
//!    to 4 burns stretched pipeline-seconds the backlog needs, while
//!    the adaptive planner backs off to narrow plans — with per-width
//!    histograms and the predicted-vs-realized audit in the JSON;
//! 8. **sessions** — a flash crowd of multi-turn conversations served
//!    with and without sticky session→card affinity, with per-session
//!    latency over per-conversation means and Jain fairness in the
//!    JSON;
//! 9. **faults** — seeded card faults mid-diurnal: a card death with
//!    in-flight shards lost and a later revival, and a 2× calibration
//!    degrade the cost model re-snapshots — fault/recovery counts and
//!    degraded-mode service in the JSON, next to the fault-free
//!    control run;
//! 10. **decode** — a decode-heavy interactive mix (2–6 steps per
//!     request, seeded early exit) near saturation on the
//!     bandwidth-binned fleet: continuous batching (step remnants
//!     requeue and fresh requests overtake between steps) vs whole-job
//!     queueing (run-to-completion), adaptive vs fixed per-step width,
//!     and an early-exit-off control — with TTFT, steps/request, and
//!     early-exit rates in the JSON's `decode` blocks.
//!
//! Every sweep cell is an independent simulation with its own seeded
//! generator, so the cells run on a scoped thread pool (`--jobs N`).
//! Results are collected by cell index and every table and JSON byte is
//! assembled sequentially after the pool joins: output is bitwise
//! identical for a fixed `seed` regardless of `--jobs`. Per-scenario
//! timing and kernel events/sec go to **stderr** only, so the tables on
//! stdout and the JSON artifact stay byte-identical run to run.
//!
//! ```text
//! cargo run --release -p swat-bench --bin serve_sweep [--jobs N] [seed] [requests]
//! ```
//!
//! `requests` (default 10 000) scales every run; CI smoke-tests the
//! binary at 500 and cross-checks `--jobs 4` against `--jobs 1`.

use swat::SwatConfig;
use swat_bench::{banner, print_table};
use swat_hw::MemoryInterface;
use swat_serve::arrival::ArrivalProcess;
use swat_serve::fault::FaultPlan;
use swat_serve::fleet::{CardGroup, FleetConfig};
use swat_serve::json::Json;
use swat_serve::metrics::ServeReport;
use swat_serve::policy::{
    all_policies, LeastLoaded, SessionAffinity, ShardedLeastLoaded, ShardedShortestJobFirst,
    ShortestJobFirst,
};
use swat_serve::scale::AutoscalerConfig;
use swat_serve::session::{SessionProfile, SessionTraffic};
use swat_serve::sim::{
    AdmissionControl, DecodeBatching, PreemptionControl, Simulation, TrafficSpec,
};
use swat_workloads::{DecodeMix, RequestMix};

/// Default requests per sweep cell.
const DEFAULT_REQUESTS: usize = 10_000;

/// A deferred sweep cell: owns everything it needs (fleet clone, arrival
/// process, policy recipe) so the pool can run it on any worker thread.
type Cell = Box<dyn FnOnce() -> (ServeReport, u64) + Send>;

/// One executed cell: the deterministic report plus the two
/// non-deterministic side channels (kernel event count is deterministic,
/// wall-clock is not — it only ever reaches stderr).
struct CellOut {
    report: ServeReport,
    events: u64,
    wall_s: f64,
}

/// Runs every cell on a scoped thread pool of `jobs` workers and returns
/// the results indexed exactly like the input. Workers claim cells from a
/// shared atomic cursor, so a slow cell never blocks an idle worker; with
/// `--jobs 1` the cells run in order on one worker. Nothing downstream
/// can observe the execution order: all output assembly happens after the
/// scope joins, reading this vector in cell-index order.
fn run_cells(cells: Vec<Cell>, jobs: usize) -> Vec<CellOut> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let queue: Vec<Mutex<Option<Cell>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<CellOut>>> = queue.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(queue.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= queue.len() {
                    break;
                }
                let cell = queue[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each cell runs once");
                let started = std::time::Instant::now();
                let (report, events) = cell();
                *slots[i].lock().unwrap() = Some(CellOut {
                    report,
                    events,
                    wall_s: started.elapsed().as_secs_f64(),
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
        .collect()
}

fn fleet_json(fleet: &FleetConfig) -> Json {
    Json::obj([
        ("cards", Json::Int(fleet.cards() as i64)),
        ("pipelines", Json::Int(fleet.total_pipelines() as i64)),
        (
            "groups",
            Json::arr(fleet.groups.iter().map(|g| {
                Json::obj([
                    ("count", Json::Int(g.count as i64)),
                    ("design", Json::Str(g.design())),
                    ("memory_gbps", Json::Num(g.memory.bytes_per_sec() / 1e9)),
                ])
            })),
        ),
    ])
}

fn run_cell(
    fleet: &FleetConfig,
    arrivals: ArrivalProcess,
    policy: &mut dyn swat_serve::DispatchPolicy,
    admission: AdmissionControl,
    seed: u64,
    requests: usize,
) -> (ServeReport, u64) {
    let spec = TrafficSpec {
        arrivals,
        mix: RequestMix::Production,
        seed,
    };
    let (report, counters) = Simulation::new(fleet)
        .arrivals_label(format!("{}/{}", arrivals.name(), spec.mix.name()))
        .admission(admission)
        .run_profiled(policy, &spec.requests(requests));
    (report, counters.events_total())
}

/// Reports a scenario's compute cost to stderr. `wall` is the sum of the
/// scenario's per-cell wall-clock times — CPU-seconds under `--jobs N`,
/// elapsed time under `--jobs 1`. stdout (the tables) and
/// `BENCH_serve.json` stay byte-identical — CI's sha-compare and any
/// `2>/dev/null` consumer are unaffected.
fn scenario_timing(scenario: &str, runs: usize, events: u64, wall: f64) {
    let rate = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    eprintln!(
        "timing: {scenario:<14} {runs:>2} runs  {events:>9} kernel events  \
         {wall:>6.2} s wall  {rate:>9.0} events/s"
    );
}

/// One run's JSON, annotated with the inputs the report alone cannot
/// recover: the arrival process's long-run offered load, the admission
/// setting, and the elastic-control setting the cell ran under (two
/// priority- or preemption-scenario runs are otherwise indistinguishable
/// by any recorded field).
fn annotated_run(
    report: &ServeReport,
    arrivals: ArrivalProcess,
    admission: &str,
    elastic: &str,
) -> Json {
    match report.to_json() {
        Json::Obj(mut pairs) => {
            pairs.insert(2, ("offered_rps".into(), Json::Num(arrivals.mean_rate())));
            pairs.insert(3, ("admission".into(), Json::Str(admission.into())));
            pairs.insert(4, ("elastic".into(), Json::Str(elastic.into())));
            Json::Obj(pairs)
        }
        other => other,
    }
}

/// Formats an optional seconds value as milliseconds for the tables; a
/// fully-shed cell has no latency distribution and shows "-".
fn ms(value: Option<f64>) -> String {
    value.map_or("-".to_string(), |v| format!("{:.1}", v * 1e3))
}

fn summary_row(scenario: &str, report: &ServeReport) -> Vec<String> {
    vec![
        scenario.to_string(),
        report.arrivals.clone(),
        report.policy.clone(),
        format!("{:.1}", report.throughput_rps),
        ms(report.latency.map(|l| l.p50)),
        ms(report.latency.map(|l| l.p95)),
        ms(report.latency.map(|l| l.p99)),
        format!("{:.0}%", report.fleet_utilization() * 100.0),
        format!("{}", report.queue.max_depth),
        format!("{}", report.slo_violations),
        format!("{}", report.rejected),
        format!("{}", report.preemption_count()),
        format!("{}", report.scaling.len()),
        format!("{}", report.weight_swaps()),
        format!("{:.1}", report.total_energy_joules()),
    ]
}

/// Prints the usage line and exits with status 2 — unparseable arguments
/// should read as operator error, not a crash.
fn usage(problem: &str) -> ! {
    eprintln!("serve_sweep: {problem}");
    eprintln!("usage: serve_sweep [--jobs N] [seed] [requests]");
    eprintln!("  --jobs N  worker threads for the 43 sweep cells (default 1;");
    eprintln!("            output is byte-identical for every N)");
    eprintln!("  seed      u64 sweep seed (default 0x5EED)");
    eprintln!("  requests  requests per sweep cell (default {DEFAULT_REQUESTS}, must be > 0)");
    eprintln!();
    eprintln!("sweeps ten scenarios: homogeneous, heterogeneous, priority, preemption,");
    eprintln!("autoscale, sharded, adaptive-width, sessions, faults, and decode (the");
    eprintln!("token-level step loop: batching-mode and width-discipline A/B cells).");
    std::process::exit(2);
}

fn main() {
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(rest) = arg.strip_prefix("--jobs") {
            let value = match rest.strip_prefix('=') {
                Some(v) => v.to_string(),
                None if rest.is_empty() => {
                    args.next().unwrap_or_else(|| usage("--jobs needs a value"))
                }
                _ => usage(&format!("unexpected argument {arg:?}")),
            };
            jobs = value.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("--jobs must be a positive integer, got {value:?}"))
            });
        } else if seed.is_none() {
            seed = Some(arg.parse().unwrap_or_else(|_| {
                usage(&format!("seed must be an unsigned integer, got {arg:?}"))
            }));
        } else if requests.is_none() {
            requests = Some(arg.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("requests must be a positive integer, got {arg:?}"))
            }));
        } else {
            usage(&format!("unexpected argument {arg:?}"));
        }
    }
    let seed = seed.unwrap_or(0x5EED);
    let requests = requests.unwrap_or(DEFAULT_REQUESTS);

    // The production mix averages ≈0.6 s of single-pipeline service per
    // request, so 12 FP16 pipelines sustain ≈20 rps. Rates target ≈70%
    // mean utilization — with transient overload inside bursts (4× base)
    // and at the diurnal peak (1.2× capacity), where queues visibly form.
    let homogeneous = FleetConfig::standard(6);
    let homogeneous_arrivals = [
        ArrivalProcess::poisson(14.0),
        ArrivalProcess::bursty(8.0),
        ArrivalProcess::diurnal(4.0, 24.0),
    ];
    // The mixed fleet trades two FP16 duals for four FP32 singles:
    // ≈11 FP16-equivalent pipelines, so rates scale down accordingly.
    let heterogeneous = FleetConfig::mixed_precision(4, 4);
    let heterogeneous_arrivals = [ArrivalProcess::poisson(12.0), ArrivalProcess::bursty(7.0)];
    // Priority scenario: sustained bursts past capacity, where admission
    // control earns its keep by shedding background filler.
    let priority_arrivals = ArrivalProcess::bursty(12.0);
    let background_cap = 32usize;
    // Preemption scenario: bursty traffic with real lulls — background
    // work gets dispatched between bursts, then interactive bursts arrive
    // to find the pipelines occupied, which is the only regime where
    // checkpoint-and-requeue has victims to take. Base rate well under
    // the two-card capacity (≈6.6 rps) so the lulls genuinely drain.
    let preemption_fleet = FleetConfig::standard(2);
    let preemption_arrivals = ArrivalProcess::bursty(2.5);
    let patience = 0.1f64;
    // Autoscale scenario: a compressed diurnal ramp on the 6-card fleet.
    // The static fleet pays idle power all "night", the elastic one parks
    // down to 2 cards and pays warm-up latency (and some SLO attainment)
    // on the morning ramp instead.
    let autoscale_arrivals = ArrivalProcess::diurnal(3.0, 22.0);
    let scaler_cfg = AutoscalerConfig::standard().with_min_cards(2);
    // Sharded scenario: light load on the 4-card fleet leaves idle
    // pipelines at most dispatches — exactly when splitting a request's
    // independent attention jobs across them pays off in latency.
    let sharded_fleet = FleetConfig::standard(4);
    let sharded_arrivals = ArrivalProcess::poisson(6.0);
    let sharded_max = 4usize;
    // Adaptive-width scenario: bandwidth-binned cards (1.2 GB/s against
    // the ~1.15 GB/s one FP16 pipeline streams), so two co-located shards
    // oversubscribe the interface and stretch ~1.9×. Interactive Poisson
    // load near the fixed policy's saturation point keeps the queue deep,
    // where pipeline-seconds are the scarce resource: fixed fan-out burns
    // the stretch on every wide dispatch, the cost-model planner prices
    // the backlog, backs off to narrow plans, and sustains the rate.
    let binned_fleet = FleetConfig {
        groups: vec![CardGroup::new(
            4,
            SwatConfig::bigbird_dual_fp16(),
            MemoryInterface::new(1.2e9),
        )],
        host_link: MemoryInterface::pcie4_x16(),
    };
    let adaptive_arrivals = ArrivalProcess::poisson(80.0);
    let adaptive_mix = RequestMix::Interactive;
    let adaptive_max = 4usize;
    // Sessions scenario: a flash crowd of conversations — session *starts*
    // spike 10× at the onset and relax over the decay — served with and
    // without sticky session→card residency. Sessions average ≈5 turns
    // (standard profile), so the cell sees roughly `requests` turns.
    let session_fleet = FleetConfig::standard(4);
    let session_arrivals = ArrivalProcess::flash_crowd(2.0, 20.0, 30.0, 5.0);
    let session_profile = SessionProfile::standard();
    let affinity_cap = 64usize;
    let sessions_per_cell = (requests / 5).max(1);
    // Faults scenario: the same trace served fault-free, through a card
    // death (in-flight shards lost, remnants requeued, a revival later),
    // and through a 2× calibration degrade — all at seeded mid-diurnal
    // times, so recovery happens under the peak.
    let fault_fleet = FleetConfig::standard(4);
    let fault_arrivals = ArrivalProcess::diurnal(3.0, 14.0);
    // Decode scenario: the same bandwidth-binned fleet as adaptive-width,
    // but every request owes 2–6 decode steps (seeded early exit at 20%
    // per boundary, expected ≈2.9 steps), so ≈28 rps saturates where the
    // one-shot mix took 80. Poisson load just under that keeps the queue
    // deep enough that *when* a remnant re-enters matters: continuous
    // batching lets short fresh requests overtake a long decode between
    // its steps, whole-job queueing holds the card run-to-completion.
    let decode_arrivals = ArrivalProcess::poisson(24.0);
    let decode_mix = RequestMix::Interactive;
    let decode_steps = (2u32, 6u32);
    let decode_exit_prob = 0.2f64;
    let decode_max = 4usize;

    banner(format!(
        "serve_sweep — {requests} requests/cell, 10 scenarios / 43 cells on FP16/FP32 fleets \
         (seed {seed:#x})"
    ));

    // Phase 1: enqueue every cell as an owned closure. Indices into
    // `cells` are recorded per scenario so phase 3 can assemble rows,
    // extra tables, and JSON in exactly the order the sequential sweep
    // used — the executed order (phase 2) is unobservable.
    let mut cells: Vec<Cell> = Vec::new();

    // Scenario 1: homogeneous baseline.
    let mut s1_cells = Vec::new();
    for arrivals in homogeneous_arrivals {
        for pi in 0..all_policies().len() {
            let fleet = homogeneous.clone();
            cells.push(Box::new(move || {
                let mut policy = all_policies().remove(pi);
                run_cell(
                    &fleet,
                    arrivals,
                    &mut *policy,
                    AdmissionControl::admit_all(),
                    seed,
                    requests,
                )
            }));
            s1_cells.push((cells.len() - 1, arrivals));
        }
    }

    // Scenario 2: heterogeneous fleet.
    let mut s2_cells = Vec::new();
    for arrivals in heterogeneous_arrivals {
        for pi in 0..all_policies().len() {
            let fleet = heterogeneous.clone();
            cells.push(Box::new(move || {
                let mut policy = all_policies().remove(pi);
                run_cell(
                    &fleet,
                    arrivals,
                    &mut *policy,
                    AdmissionControl::admit_all(),
                    seed,
                    requests,
                )
            }));
            s2_cells.push((cells.len() - 1, arrivals));
        }
    }

    // Scenario 3: priority classes under overload, admission on vs off.
    let mut s3_cells = Vec::new();
    for (label, cap) in [
        ("admit-all", None),
        ("shed-background", Some(background_cap)),
    ] {
        let fleet = homogeneous.clone();
        cells.push(Box::new(move || {
            let admission = match cap {
                Some(depth) => AdmissionControl::shed_background_at(depth),
                None => AdmissionControl::admit_all(),
            };
            run_cell(
                &fleet,
                priority_arrivals,
                &mut LeastLoaded,
                admission,
                seed,
                requests,
            )
        }));
        s3_cells.push((cells.len() - 1, label));
    }

    // Scenario 4: preemption on vs off.
    let mut s4_cells = Vec::new();
    for (label, wait) in [
        ("run-to-completion", None),
        ("preempt-100ms", Some(patience)),
    ] {
        let fleet = preemption_fleet.clone();
        cells.push(Box::new(move || {
            let spec = TrafficSpec {
                arrivals: preemption_arrivals,
                mix: RequestMix::Production,
                seed,
            };
            let preemption = match wait {
                Some(w) => PreemptionControl::after_wait(w),
                None => PreemptionControl::disabled(),
            };
            let (report, counters) = Simulation::new(&fleet)
                .arrivals_label(format!(
                    "{}/{}",
                    preemption_arrivals.name(),
                    spec.mix.name()
                ))
                .preemption(preemption)
                .run_profiled(&mut LeastLoaded, &spec.requests(requests));
            (report, counters.events_total())
        }));
        s4_cells.push((cells.len() - 1, label));
    }

    // Scenario 5: autoscale on vs off.
    let mut s5_cells = Vec::new();
    for (label, scale) in [("static", None), ("autoscale-min2", Some(scaler_cfg))] {
        let fleet = homogeneous.clone();
        cells.push(Box::new(move || {
            let spec = TrafficSpec {
                arrivals: autoscale_arrivals,
                mix: RequestMix::Production,
                seed,
            };
            let mut sim = Simulation::new(&fleet).arrivals_label(format!(
                "{}/{}",
                autoscale_arrivals.name(),
                spec.mix.name()
            ));
            if let Some(cfg) = scale {
                sim = sim.autoscale(cfg);
            }
            let (report, counters) = sim.run_profiled(&mut LeastLoaded, &spec.requests(requests));
            (report, counters.events_total())
        }));
        s5_cells.push((cells.len() - 1, label));
    }

    // Scenario 6: sharded vs whole-request dispatch. The policy is built
    // inside the cell (trait objects need not cross threads).
    type PolicyRecipe = Box<dyn Fn() -> Box<dyn swat_serve::DispatchPolicy> + Send>;
    let sharded_recipes: Vec<(&str, PolicyRecipe)> = vec![
        ("whole", Box::new(|| Box::new(LeastLoaded))),
        (
            "sharded-4",
            Box::new(move || Box::new(ShardedLeastLoaded::new(sharded_max))),
        ),
        ("whole", Box::new(|| Box::new(ShortestJobFirst))),
        (
            "sharded-4",
            Box::new(move || Box::new(ShardedShortestJobFirst::new(sharded_max))),
        ),
    ];
    let mut s6_cells = Vec::new();
    for (label, recipe) in sharded_recipes {
        let fleet = sharded_fleet.clone();
        cells.push(Box::new(move || {
            let mut policy = recipe();
            run_cell(
                &fleet,
                sharded_arrivals,
                &mut *policy,
                AdmissionControl::admit_all(),
                seed,
                requests,
            )
        }));
        s6_cells.push((cells.len() - 1, label));
    }

    // Scenario 7: adaptive vs fixed shard width under a deep queue.
    let adaptive_recipes: Vec<(&str, PolicyRecipe)> = vec![
        (
            "fixed-4",
            Box::new(move || Box::new(ShardedLeastLoaded::fixed(adaptive_max))),
        ),
        (
            "adaptive-4",
            Box::new(move || Box::new(ShardedLeastLoaded::new(adaptive_max))),
        ),
        (
            "fixed-4",
            Box::new(move || Box::new(ShardedShortestJobFirst::fixed(adaptive_max))),
        ),
        (
            "adaptive-4",
            Box::new(move || Box::new(ShardedShortestJobFirst::new(adaptive_max))),
        ),
    ];
    let mut s7_cells = Vec::new();
    for (label, recipe) in adaptive_recipes {
        let fleet = binned_fleet.clone();
        cells.push(Box::new(move || {
            let spec = TrafficSpec {
                arrivals: adaptive_arrivals,
                mix: adaptive_mix,
                seed,
            };
            let mut policy = recipe();
            let (report, counters) = Simulation::new(&fleet)
                .arrivals_label(format!(
                    "{}/{}",
                    adaptive_arrivals.name(),
                    adaptive_mix.name()
                ))
                .run_profiled(&mut *policy, &spec.requests(requests));
            (report, counters.events_total())
        }));
        s7_cells.push((cells.len() - 1, label));
    }

    // Scenario 8: session affinity on vs off under a flash crowd. Both
    // cells serve the identical tagged conversation trace (open-loop
    // arrivals make it policy-independent), so any difference is pure
    // dispatch.
    let session_recipes: Vec<(&str, PolicyRecipe)> = vec![
        ("affinity-off", Box::new(|| Box::new(LeastLoaded))),
        (
            "affinity-on",
            Box::new(move || Box::new(SessionAffinity::new(affinity_cap))),
        ),
    ];
    let mut s8_cells = Vec::new();
    for (label, recipe) in session_recipes {
        let fleet = session_fleet.clone();
        cells.push(Box::new(move || {
            let spec = SessionTraffic {
                arrivals: session_arrivals,
                profile: session_profile,
                seed,
            };
            let mut policy = recipe();
            let (report, counters) = Simulation::new(&fleet)
                .arrivals_label(format!("{}/sessions", session_arrivals.name()))
                .run_profiled(&mut *policy, &spec.requests(sessions_per_cell));
            (report, counters.events_total())
        }));
        s8_cells.push((cells.len() - 1, label));
    }

    // Scenario 9: seeded faults mid-diurnal. The plan's times are derived
    // from the trace itself (fractions of its span), so the same faults
    // land at the same phase of the diurnal cycle at any `requests`.
    let mut s9_cells = Vec::new();
    for (label, mode) in [("fault-free", 0u8), ("card-death", 1), ("degrade-2x", 2)] {
        let fleet = fault_fleet.clone();
        cells.push(Box::new(move || {
            let spec = TrafficSpec {
                arrivals: fault_arrivals,
                mix: RequestMix::Production,
                seed,
            };
            let trace = spec.requests(requests);
            let t0 = trace[0].arrival;
            let span = trace.last().unwrap().arrival - t0;
            let plan = match mode {
                1 => FaultPlan::none()
                    .kill(t0 + span * 0.4, 0)
                    .revive(t0 + span * 0.7, 0, 2.0),
                2 => FaultPlan::none().degrade(t0 + span * 0.4, 0, 2.0),
                _ => FaultPlan::none(),
            };
            let (report, counters) = Simulation::new(&fleet)
                .arrivals_label(format!("{}/{}", fault_arrivals.name(), spec.mix.name()))
                .faults(plan)
                .run_profiled(&mut LeastLoaded, &trace);
            (report, counters.events_total())
        }));
        s9_cells.push((cells.len() - 1, label));
    }

    // Scenario 10: token-level decode near saturation — batching mode
    // A/B, width discipline A/B, and an early-exit-off control. Every
    // cell serves byte-identical base traffic (plans ride a decorrelated
    // substream), so differences are pure step scheduling.
    let mut s10_cells = Vec::new();
    for (label, whole_job, fixed, exit_prob) in [
        ("continuous/adaptive-4", false, false, decode_exit_prob),
        ("whole-job/adaptive-4", true, false, decode_exit_prob),
        ("continuous/fixed-4", false, true, decode_exit_prob),
        ("continuous/no-exit", false, false, 0.0),
    ] {
        let fleet = binned_fleet.clone();
        cells.push(Box::new(move || {
            let spec = TrafficSpec {
                arrivals: decode_arrivals,
                mix: decode_mix,
                seed,
            };
            let plans = DecodeMix {
                min_steps: decode_steps.0,
                max_steps: decode_steps.1,
                exit_prob,
            };
            let mut policy: Box<dyn swat_serve::DispatchPolicy> = if fixed {
                Box::new(ShardedShortestJobFirst::fixed(decode_max))
            } else {
                Box::new(ShardedShortestJobFirst::new(decode_max))
            };
            let batching = if whole_job {
                DecodeBatching::WholeJob
            } else {
                DecodeBatching::Continuous
            };
            let (report, counters) = Simulation::new(&fleet)
                .arrivals_label(format!("{}/{}", decode_arrivals.name(), decode_mix.name()))
                .decode_batching(batching)
                .run_profiled(&mut *policy, &spec.decode_requests(requests, &plans));
            (report, counters.events_total())
        }));
        s10_cells.push((cells.len() - 1, label));
    }

    // Phase 2: run the cells. Each is its own seeded simulation, so the
    // pool introduces no cross-cell state.
    let outs = run_cells(cells, jobs);
    let scenario_stats = |indices: &[usize]| {
        let events = indices.iter().map(|&i| outs[i].events).sum::<u64>();
        let wall = indices.iter().map(|&i| outs[i].wall_s).sum::<f64>();
        (events, wall)
    };

    // Phase 3: assemble every byte of stdout and JSON in the sequential
    // sweep's order.
    let mut rows = Vec::new();
    let mut scenarios = Vec::new();

    let mut runs = Vec::new();
    for &(i, arrivals) in &s1_cells {
        rows.push(summary_row("homogeneous", &outs[i].report));
        runs.push(annotated_run(
            &outs[i].report,
            arrivals,
            "admit-all",
            "none",
        ));
    }
    let (events, wall) = scenario_stats(&s1_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("homogeneous", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("homogeneous".into())),
        ("fleet", fleet_json(&homogeneous)),
        ("admission_queue_cap", Json::Null),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    for &(i, arrivals) in &s2_cells {
        rows.push(summary_row("heterogeneous", &outs[i].report));
        runs.push(annotated_run(
            &outs[i].report,
            arrivals,
            "admit-all",
            "none",
        ));
    }
    let (events, wall) = scenario_stats(&s2_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("heterogeneous", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("heterogeneous".into())),
        ("fleet", fleet_json(&heterogeneous)),
        ("admission_queue_cap", Json::Null),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    let mut class_rows = Vec::new();
    for &(i, label) in &s3_cells {
        let report = &outs[i].report;
        rows.push(summary_row(&format!("priority/{label}"), report));
        for class in &report.classes {
            let latency = class.latency;
            class_rows.push(vec![
                label.to_string(),
                class.class.name().to_string(),
                format!("{}", class.offered),
                format!("{}", class.completed),
                format!("{}", class.rejected),
                format!("{}", class.slo_violations),
                ms(latency.map(|l| l.p50)),
                ms(latency.map(|l| l.p95)),
                ms(latency.map(|l| l.p99)),
            ]);
        }
        runs.push(annotated_run(report, priority_arrivals, label, "none"));
    }
    let (events, wall) = scenario_stats(&s3_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("priority", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("priority".into())),
        ("fleet", fleet_json(&homogeneous)),
        ("admission_queue_cap", Json::Int(background_cap as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    for &(i, label) in &s4_cells {
        rows.push(summary_row(&format!("preemption/{label}"), &outs[i].report));
        runs.push(annotated_run(
            &outs[i].report,
            preemption_arrivals,
            "admit-all",
            label,
        ));
    }
    let (events, wall) = scenario_stats(&s4_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("preemption", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("preemption".into())),
        ("fleet", fleet_json(&preemption_fleet)),
        ("preemption_wait_s", Json::Num(patience)),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    let mut tradeoff_rows = Vec::new();
    for &(i, label) in &s5_cells {
        let report = &outs[i].report;
        rows.push(summary_row(&format!("autoscale/{label}"), report));
        tradeoff_rows.push(vec![
            label.to_string(),
            format!("{}", report.scaling.len()),
            format!("{:.1}", report.energy_joules),
            format!("{:.1}", report.idle_energy_joules),
            format!("{:.1}", report.total_energy_joules()),
            format!("{:.2}%", report.slo_attainment() * 100.0),
            ms(report.latency.map(|l| l.p99)),
        ]);
        runs.push(annotated_run(
            report,
            autoscale_arrivals,
            "admit-all",
            label,
        ));
    }
    let (events, wall) = scenario_stats(&s5_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("autoscale", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("autoscale".into())),
        ("fleet", fleet_json(&homogeneous)),
        (
            "autoscaler",
            Json::obj([
                ("min_cards", Json::Int(scaler_cfg.min_cards as i64)),
                (
                    "up_queue_per_card",
                    Json::Int(scaler_cfg.up_queue_per_card as i64),
                ),
                ("down_idle_s", Json::Num(scaler_cfg.down_idle_s)),
                ("warmup_s", Json::Num(scaler_cfg.warmup_s)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    let mut fanout_rows = Vec::new();
    for &(i, label) in &s6_cells {
        let report = &outs[i].report;
        rows.push(summary_row(&format!("sharded/{label}"), report));
        fanout_rows.push(vec![
            report.policy.clone(),
            format!("{}", report.sharded_requests),
            format!("{}", report.max_shards),
            ms(report.latency.map(|l| l.p50)),
            ms(report.latency.map(|l| l.p99)),
            format!("{:.2}%", report.slo_attainment() * 100.0),
        ]);
        runs.push(annotated_run(report, sharded_arrivals, "admit-all", label));
    }
    let (events, wall) = scenario_stats(&s6_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("sharded", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("sharded".into())),
        ("fleet", fleet_json(&sharded_fleet)),
        ("max_shards", Json::Int(sharded_max as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    let mut width_rows = Vec::new();
    for &(i, label) in &s7_cells {
        let report = &outs[i].report;
        rows.push(summary_row(&format!("adaptive/{label}"), report));
        let widths = report
            .shard_widths
            .iter()
            .enumerate()
            .map(|(w, n)| format!("{}:{n}", w + 1))
            .collect::<Vec<_>>()
            .join(" ");
        width_rows.push(vec![
            report.policy.clone(),
            widths,
            ms(report.latency.map(|l| l.p50)),
            ms(report.latency.map(|l| l.p99)),
            format!("{:.2}%", report.slo_attainment() * 100.0),
            report
                .cost_prediction
                .map_or("-".to_string(), |p| format!("{:.1e}", p.max_error_s)),
        ]);
        runs.push(annotated_run(report, adaptive_arrivals, "admit-all", label));
    }
    let (events, wall) = scenario_stats(&s7_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("adaptive-width", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("adaptive-width".into())),
        ("fleet", fleet_json(&binned_fleet)),
        ("max_shards", Json::Int(adaptive_max as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    let mut session_rows = Vec::new();
    for &(i, label) in &s8_cells {
        let report = &outs[i].report;
        rows.push(summary_row(&format!("sessions/{label}"), report));
        let s = report.sessions.as_ref().expect("session traffic is tagged");
        session_rows.push(vec![
            report.policy.clone(),
            format!("{}", s.sessions),
            format!("{:.1}", s.mean_turns),
            ms(s.latency.map(|l| l.p50)),
            ms(s.latency.map(|l| l.p99)),
            format!("{:.3}", s.fairness),
        ]);
        runs.push(annotated_run(report, session_arrivals, "admit-all", label));
    }
    let (events, wall) = scenario_stats(&s8_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("sessions", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("sessions".into())),
        ("fleet", fleet_json(&session_fleet)),
        (
            "profile",
            Json::obj([
                ("min_turns", Json::Int(session_profile.min_turns as i64)),
                ("max_turns", Json::Int(session_profile.max_turns as i64)),
                ("think_mean_s", Json::Num(session_profile.think_mean_s)),
                ("heavy_pct", Json::Int(session_profile.heavy_pct as i64)),
            ]),
        ),
        ("sessions_per_run", Json::Int(sessions_per_cell as i64)),
        ("affinity_capacity_per_card", Json::Int(affinity_cap as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    let mut fault_rows = Vec::new();
    for &(i, label) in &s9_cells {
        let report = &outs[i].report;
        rows.push(summary_row(&format!("faults/{label}"), report));
        let (deaths, degrades, revivals, lost, failed) = match &report.faults {
            Some(f) => (
                f.card_deaths,
                f.degrades,
                f.revivals,
                f.shards_lost,
                f.failed,
            ),
            None => (0, 0, 0, 0, 0),
        };
        fault_rows.push(vec![
            label.to_string(),
            format!("{deaths}"),
            format!("{degrades}"),
            format!("{revivals}"),
            format!("{lost}"),
            format!("{failed}"),
            ms(report.latency.map(|l| l.p99)),
            format!("{:.2}%", report.slo_attainment() * 100.0),
        ]);
        runs.push(annotated_run(report, fault_arrivals, "admit-all", label));
    }
    let (events, wall) = scenario_stats(&s9_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("faults", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("faults".into())),
        ("fleet", fleet_json(&fault_fleet)),
        ("runs", Json::Arr(runs)),
    ]));

    let mut runs = Vec::new();
    let mut decode_rows = Vec::new();
    for &(i, label) in &s10_cells {
        let report = &outs[i].report;
        rows.push(summary_row(&format!("decode/{label}"), report));
        let d = report
            .decode
            .as_ref()
            .expect("decode traffic is multi-step");
        decode_rows.push(vec![
            label.to_string(),
            format!("{:.2}", d.mean_steps),
            format!("{:.0}%", d.early_exit_rate * 100.0),
            ms(d.ttft.map(|l| l.p50)),
            ms(d.ttft.map(|l| l.p99)),
            ms(report.latency.map(|l| l.p50)),
            ms(report.latency.map(|l| l.p99)),
            format!("{:.2}%", report.slo_attainment() * 100.0),
        ]);
        runs.push(annotated_run(report, decode_arrivals, "admit-all", label));
    }
    let (events, wall) = scenario_stats(&s10_cells.iter().map(|c| c.0).collect::<Vec<_>>());
    scenario_timing("decode", runs.len(), events, wall);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("decode".into())),
        ("fleet", fleet_json(&binned_fleet)),
        ("max_shards", Json::Int(decode_max as i64)),
        (
            "decode_mix",
            Json::obj([
                ("min_steps", Json::Int(decode_steps.0 as i64)),
                ("max_steps", Json::Int(decode_steps.1 as i64)),
                ("exit_prob", Json::Num(decode_exit_prob)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ]));

    print_table(
        &[
            "scenario", "arrivals", "policy", "rps", "p50 ms", "p95 ms", "p99 ms", "util", "max q",
            "slo viol", "rejected", "preempt", "scale", "swaps", "J",
        ],
        &rows,
    );
    println!("\nsharded scenario, fan-out vs whole-request (poisson, 4 cards):");
    print_table(
        &[
            "policy",
            "sharded reqs",
            "max shards",
            "p50 ms",
            "p99 ms",
            "slo attain",
        ],
        &fanout_rows,
    );
    println!(
        "\nadaptive-width scenario, fan-out discipline under a deep queue \
         (poisson, 4 bandwidth-binned cards):"
    );
    print_table(
        &[
            "policy",
            "width:count",
            "p50 ms",
            "p99 ms",
            "slo attain",
            "pred err s",
        ],
        &width_rows,
    );
    println!("\nautoscale scenario, energy vs SLO (least-loaded, diurnal ramp):");
    print_table(
        &[
            "fleet",
            "scale events",
            "active J",
            "idle J",
            "total J",
            "slo attain",
            "p99 ms",
        ],
        &tradeoff_rows,
    );
    println!("\npriority scenario, per class (least-loaded, bursty overload):");
    print_table(
        &[
            "admission",
            "class",
            "offered",
            "done",
            "shed",
            "slo viol",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
        &class_rows,
    );
    println!("\nsessions scenario, sticky affinity vs least-loaded (flash crowd, 4 cards):");
    print_table(
        &[
            "policy",
            "sessions",
            "mean turns",
            "sess p50 ms",
            "sess p99 ms",
            "jain",
        ],
        &session_rows,
    );
    println!("\nfaults scenario, seeded card faults mid-diurnal (least-loaded, 4 cards):");
    print_table(
        &[
            "plan",
            "deaths",
            "degrades",
            "revivals",
            "shards lost",
            "failed",
            "p99 ms",
            "slo attain",
        ],
        &fault_rows,
    );
    println!(
        "\ndecode scenario, step batching and width discipline near saturation \
         (sharded SJF, 4 bandwidth-binned cards):"
    );
    print_table(
        &[
            "cell",
            "mean steps",
            "exits",
            "ttft p50 ms",
            "ttft p99 ms",
            "p50 ms",
            "p99 ms",
            "slo attain",
        ],
        &decode_rows,
    );

    let doc = Json::obj([
        ("bench", Json::Str("serve_sweep".into())),
        ("seed", Json::UInt(seed)),
        ("requests_per_run", Json::Int(requests as i64)),
        ("mix", Json::Str(RequestMix::Production.name().into())),
        ("scenarios", Json::Arr(scenarios)),
    ]);

    let path = "BENCH_serve.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
