//! Fleet-serving sweep: request streams through SWAT fleets under every
//! (scenario × arrival process × dispatch policy) combination, emitting
//! `BENCH_serve.json`.
//!
//! Six scenarios exercise `swat-serve` end to end:
//!
//! 1. **homogeneous** — the PR 1 baseline: 6 dual-pipeline FP16 cards,
//!    Poisson/bursty/diurnal production traffic, all four policies;
//! 2. **heterogeneous** — a mixed fleet (4 dual-pipeline FP16 cards next
//!    to 4 single-pipeline FP32 cards), where policies must weigh
//!    per-card service-time estimates;
//! 3. **priority** — bursty overload with and without admission control
//!    (background shed at queue depth 32), reported per priority class;
//! 4. **preemption** — bursty traffic with lulls (background dispatches,
//!    then interactive bursts find the pipelines occupied), with and
//!    without checkpoint-and-requeue preemption, preemption counts and
//!    the full preemption log in the JSON;
//! 5. **autoscale** — diurnal traffic on a static fleet vs the same fleet
//!    under the autoscaler, with scaling timelines and the idle-energy /
//!    SLO-attainment tradeoff in the JSON;
//! 6. **sharded** — whole-request dispatch vs split-aware dispatch
//!    (`max_shards = 4`) on a lightly loaded fleet, where fanning a
//!    request's independent attention jobs across idle pipelines cuts
//!    per-request latency (fan-out/fan-in), with shard counts in the
//!    JSON;
//! 7. **adaptive-width** — cost-model width selection vs fixed fan-out
//!    under a deep queue on bandwidth-binned cards (two co-located
//!    shards oversubscribe the memory interface ~1.9×): always fanning
//!    to 4 burns stretched pipeline-seconds the backlog needs, while
//!    the adaptive planner backs off to narrow plans — with per-width
//!    histograms and the predicted-vs-realized audit in the JSON.
//!
//! Output is bitwise identical for a fixed `seed`. Per-scenario
//! wall-clock and kernel events/sec go to **stderr** only, so the tables
//! on stdout and the JSON artifact stay byte-identical run to run.
//!
//! ```text
//! cargo run --release -p swat-bench --bin serve_sweep [seed] [requests]
//! ```
//!
//! `requests` (default 10 000) scales every run; CI smoke-tests the
//! binary at 500.

use swat::SwatConfig;
use swat_bench::{banner, print_table};
use swat_hw::MemoryInterface;
use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::{CardGroup, FleetConfig};
use swat_serve::json::Json;
use swat_serve::metrics::ServeReport;
use swat_serve::policy::{
    all_policies, LeastLoaded, ShardedLeastLoaded, ShardedShortestJobFirst, ShortestJobFirst,
};
use swat_serve::scale::AutoscalerConfig;
use swat_serve::sim::{AdmissionControl, PreemptionControl, Simulation, TrafficSpec};
use swat_workloads::RequestMix;

/// Default requests per sweep cell.
const DEFAULT_REQUESTS: usize = 10_000;

fn fleet_json(fleet: &FleetConfig) -> Json {
    Json::obj([
        ("cards", Json::Int(fleet.cards() as i64)),
        ("pipelines", Json::Int(fleet.total_pipelines() as i64)),
        (
            "groups",
            Json::arr(fleet.groups.iter().map(|g| {
                Json::obj([
                    ("count", Json::Int(g.count as i64)),
                    ("design", Json::Str(g.design())),
                    ("memory_gbps", Json::Num(g.memory.bytes_per_sec() / 1e9)),
                ])
            })),
        ),
    ])
}

fn run_cell(
    fleet: &FleetConfig,
    arrivals: ArrivalProcess,
    policy: &mut dyn swat_serve::DispatchPolicy,
    admission: AdmissionControl,
    seed: u64,
    requests: usize,
) -> (ServeReport, u64) {
    let spec = TrafficSpec {
        arrivals,
        mix: RequestMix::Production,
        seed,
    };
    let (report, counters) = Simulation::new(fleet)
        .arrivals_label(format!("{}/{}", arrivals.name(), spec.mix.name()))
        .admission(admission)
        .run_profiled(policy, &spec.requests(requests));
    (report, counters.events_total())
}

/// Reports a scenario's wall-clock cost to stderr. stdout (the tables)
/// and `BENCH_serve.json` stay byte-identical — CI's sha-compare and any
/// `2>/dev/null` consumer are unaffected.
fn scenario_timing(scenario: &str, runs: usize, events: u64, started: std::time::Instant) {
    let wall = started.elapsed().as_secs_f64();
    let rate = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    eprintln!(
        "timing: {scenario:<14} {runs:>2} runs  {events:>9} kernel events  \
         {wall:>6.2} s wall  {rate:>9.0} events/s"
    );
}

/// One run's JSON, annotated with the inputs the report alone cannot
/// recover: the arrival process's long-run offered load, the admission
/// setting, and the elastic-control setting the cell ran under (two
/// priority- or preemption-scenario runs are otherwise indistinguishable
/// by any recorded field).
fn annotated_run(
    report: &ServeReport,
    arrivals: ArrivalProcess,
    admission: &str,
    elastic: &str,
) -> Json {
    match report.to_json() {
        Json::Obj(mut pairs) => {
            pairs.insert(2, ("offered_rps".into(), Json::Num(arrivals.mean_rate())));
            pairs.insert(3, ("admission".into(), Json::Str(admission.into())));
            pairs.insert(4, ("elastic".into(), Json::Str(elastic.into())));
            Json::Obj(pairs)
        }
        other => other,
    }
}

/// Formats an optional seconds value as milliseconds for the tables; a
/// fully-shed cell has no latency distribution and shows "-".
fn ms(value: Option<f64>) -> String {
    value.map_or("-".to_string(), |v| format!("{:.1}", v * 1e3))
}

fn summary_row(scenario: &str, report: &ServeReport) -> Vec<String> {
    vec![
        scenario.to_string(),
        report.arrivals.clone(),
        report.policy.clone(),
        format!("{:.1}", report.throughput_rps),
        ms(report.latency.map(|l| l.p50)),
        ms(report.latency.map(|l| l.p95)),
        ms(report.latency.map(|l| l.p99)),
        format!("{:.0}%", report.fleet_utilization() * 100.0),
        format!("{}", report.queue.max_depth),
        format!("{}", report.slo_violations),
        format!("{}", report.rejected),
        format!("{}", report.preemption_count()),
        format!("{}", report.scaling.len()),
        format!("{}", report.weight_swaps()),
        format!("{:.1}", report.total_energy_joules()),
    ]
}

/// Prints the usage line and exits with status 2 — unparseable arguments
/// should read as operator error, not a crash.
fn usage(problem: &str) -> ! {
    eprintln!("serve_sweep: {problem}");
    eprintln!("usage: serve_sweep [seed] [requests]");
    eprintln!("  seed      u64 sweep seed (default 0x5EED)");
    eprintln!("  requests  requests per sweep cell (default {DEFAULT_REQUESTS}, must be > 0)");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = match args.next() {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| usage(&format!("seed must be an unsigned integer, got {s:?}"))),
        None => 0x5EED,
    };
    let requests: usize =
        match args.next() {
            Some(s) => s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("requests must be a positive integer, got {s:?}"))
            }),
            None => DEFAULT_REQUESTS,
        };
    if let Some(extra) = args.next() {
        usage(&format!("unexpected argument {extra:?}"));
    }

    // The production mix averages ≈0.6 s of single-pipeline service per
    // request, so 12 FP16 pipelines sustain ≈20 rps. Rates target ≈70%
    // mean utilization — with transient overload inside bursts (4× base)
    // and at the diurnal peak (1.2× capacity), where queues visibly form.
    let homogeneous = FleetConfig::standard(6);
    let homogeneous_arrivals = [
        ArrivalProcess::poisson(14.0),
        ArrivalProcess::bursty(8.0),
        ArrivalProcess::diurnal(4.0, 24.0),
    ];
    // The mixed fleet trades two FP16 duals for four FP32 singles:
    // ≈11 FP16-equivalent pipelines, so rates scale down accordingly.
    let heterogeneous = FleetConfig::mixed_precision(4, 4);
    let heterogeneous_arrivals = [ArrivalProcess::poisson(12.0), ArrivalProcess::bursty(7.0)];
    // Priority scenario: sustained bursts past capacity, where admission
    // control earns its keep by shedding background filler.
    let priority_arrivals = ArrivalProcess::bursty(12.0);
    let background_cap = 32usize;

    banner(format!(
        "serve_sweep — {requests} requests/cell, 7 scenarios on FP16/FP32 fleets (seed {seed:#x})"
    ));

    let mut rows = Vec::new();
    let mut scenarios = Vec::new();

    // Scenario 1: homogeneous baseline.
    let mut runs = Vec::new();
    let started = std::time::Instant::now();
    let mut events = 0u64;
    for arrivals in homogeneous_arrivals {
        for mut policy in all_policies() {
            let (report, cell_events) = run_cell(
                &homogeneous,
                arrivals,
                &mut *policy,
                AdmissionControl::admit_all(),
                seed,
                requests,
            );
            events += cell_events;
            rows.push(summary_row("homogeneous", &report));
            runs.push(annotated_run(&report, arrivals, "admit-all", "none"));
        }
    }
    scenario_timing("homogeneous", runs.len(), events, started);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("homogeneous".into())),
        ("fleet", fleet_json(&homogeneous)),
        ("admission_queue_cap", Json::Null),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 2: heterogeneous fleet.
    let mut runs = Vec::new();
    let started = std::time::Instant::now();
    let mut events = 0u64;
    for arrivals in heterogeneous_arrivals {
        for mut policy in all_policies() {
            let (report, cell_events) = run_cell(
                &heterogeneous,
                arrivals,
                &mut *policy,
                AdmissionControl::admit_all(),
                seed,
                requests,
            );
            events += cell_events;
            rows.push(summary_row("heterogeneous", &report));
            runs.push(annotated_run(&report, arrivals, "admit-all", "none"));
        }
    }
    scenario_timing("heterogeneous", runs.len(), events, started);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("heterogeneous".into())),
        ("fleet", fleet_json(&heterogeneous)),
        ("admission_queue_cap", Json::Null),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 3: priority classes under overload, admission on vs off.
    let mut runs = Vec::new();
    let mut class_rows = Vec::new();
    let started = std::time::Instant::now();
    let mut events = 0u64;
    for (label, admission) in [
        ("admit-all", AdmissionControl::admit_all()),
        (
            "shed-background",
            AdmissionControl::shed_background_at(background_cap),
        ),
    ] {
        let (report, cell_events) = run_cell(
            &homogeneous,
            priority_arrivals,
            &mut LeastLoaded,
            admission,
            seed,
            requests,
        );
        events += cell_events;
        rows.push(summary_row(&format!("priority/{label}"), &report));
        for class in &report.classes {
            let latency = class.latency;
            class_rows.push(vec![
                label.to_string(),
                class.class.name().to_string(),
                format!("{}", class.offered),
                format!("{}", class.completed),
                format!("{}", class.rejected),
                format!("{}", class.slo_violations),
                ms(latency.map(|l| l.p50)),
                ms(latency.map(|l| l.p95)),
                ms(latency.map(|l| l.p99)),
            ]);
        }
        runs.push(annotated_run(&report, priority_arrivals, label, "none"));
    }
    scenario_timing("priority", runs.len(), events, started);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("priority".into())),
        ("fleet", fleet_json(&homogeneous)),
        ("admission_queue_cap", Json::Int(background_cap as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 4: preemption on vs off. Bursty traffic with real lulls —
    // background work gets dispatched between bursts, then interactive
    // bursts arrive to find the pipelines occupied, which is the only
    // regime where checkpoint-and-requeue has victims to take.
    // Base rate well under the two-card capacity (≈6.6 rps) so the lulls
    // genuinely drain; the 4× bursts then pile interactive work onto
    // pipelines that background filler claimed in the quiet stretch.
    let preemption_fleet = FleetConfig::standard(2);
    let preemption_arrivals = ArrivalProcess::bursty(2.5);
    let patience = 0.1f64;
    let mut runs = Vec::new();
    let started = std::time::Instant::now();
    let mut events = 0u64;
    for (label, preemption) in [
        ("run-to-completion", PreemptionControl::disabled()),
        ("preempt-100ms", PreemptionControl::after_wait(patience)),
    ] {
        let spec = TrafficSpec {
            arrivals: preemption_arrivals,
            mix: RequestMix::Production,
            seed,
        };
        let (report, counters) = Simulation::new(&preemption_fleet)
            .arrivals_label(format!(
                "{}/{}",
                preemption_arrivals.name(),
                spec.mix.name()
            ))
            .preemption(preemption)
            .run_profiled(&mut LeastLoaded, &spec.requests(requests));
        events += counters.events_total();
        rows.push(summary_row(&format!("preemption/{label}"), &report));
        runs.push(annotated_run(
            &report,
            preemption_arrivals,
            "admit-all",
            label,
        ));
    }
    scenario_timing("preemption", runs.len(), events, started);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("preemption".into())),
        ("fleet", fleet_json(&preemption_fleet)),
        ("preemption_wait_s", Json::Num(patience)),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 5: autoscale on vs off. A compressed diurnal ramp on the
    // 6-card fleet: the static fleet pays idle power all "night", the
    // elastic one parks down to 2 cards and pays warm-up latency (and
    // some SLO attainment) on the morning ramp instead.
    let autoscale_arrivals = ArrivalProcess::diurnal(3.0, 22.0);
    let scaler_cfg = AutoscalerConfig::standard().with_min_cards(2);
    let mut runs = Vec::new();
    let mut tradeoff_rows = Vec::new();
    let started = std::time::Instant::now();
    let mut events = 0u64;
    for (label, scale) in [("static", None), ("autoscale-min2", Some(scaler_cfg))] {
        let spec = TrafficSpec {
            arrivals: autoscale_arrivals,
            mix: RequestMix::Production,
            seed,
        };
        let mut sim = Simulation::new(&homogeneous).arrivals_label(format!(
            "{}/{}",
            autoscale_arrivals.name(),
            spec.mix.name()
        ));
        if let Some(cfg) = scale {
            sim = sim.autoscale(cfg);
        }
        let (report, counters) = sim.run_profiled(&mut LeastLoaded, &spec.requests(requests));
        events += counters.events_total();
        rows.push(summary_row(&format!("autoscale/{label}"), &report));
        tradeoff_rows.push(vec![
            label.to_string(),
            format!("{}", report.scaling.len()),
            format!("{:.1}", report.energy_joules),
            format!("{:.1}", report.idle_energy_joules),
            format!("{:.1}", report.total_energy_joules()),
            format!("{:.2}%", report.slo_attainment() * 100.0),
            ms(report.latency.map(|l| l.p99)),
        ]);
        runs.push(annotated_run(
            &report,
            autoscale_arrivals,
            "admit-all",
            label,
        ));
    }
    scenario_timing("autoscale", runs.len(), events, started);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("autoscale".into())),
        ("fleet", fleet_json(&homogeneous)),
        (
            "autoscaler",
            Json::obj([
                ("min_cards", Json::Int(scaler_cfg.min_cards as i64)),
                (
                    "up_queue_per_card",
                    Json::Int(scaler_cfg.up_queue_per_card as i64),
                ),
                ("down_idle_s", Json::Num(scaler_cfg.down_idle_s)),
                ("warmup_s", Json::Num(scaler_cfg.warmup_s)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 6: sharded vs whole-request dispatch. Light load on the
    // 4-card fleet leaves idle pipelines at most dispatches — exactly
    // when splitting a request's independent attention jobs across them
    // (fan-out, completing at the last shard) pays off in latency.
    let sharded_fleet = FleetConfig::standard(4);
    let sharded_arrivals = ArrivalProcess::poisson(6.0);
    let sharded_max = 4usize;
    let mut runs = Vec::new();
    let mut fanout_rows = Vec::new();
    let mut cells: Vec<(&str, Box<dyn swat_serve::DispatchPolicy>)> = vec![
        ("whole", Box::new(LeastLoaded)),
        ("sharded-4", Box::new(ShardedLeastLoaded::new(sharded_max))),
        ("whole", Box::new(ShortestJobFirst)),
        (
            "sharded-4",
            Box::new(ShardedShortestJobFirst::new(sharded_max)),
        ),
    ];
    let started = std::time::Instant::now();
    let mut events = 0u64;
    for (label, policy) in &mut cells {
        let (report, cell_events) = run_cell(
            &sharded_fleet,
            sharded_arrivals,
            &mut **policy,
            AdmissionControl::admit_all(),
            seed,
            requests,
        );
        events += cell_events;
        rows.push(summary_row(&format!("sharded/{label}"), &report));
        fanout_rows.push(vec![
            report.policy.clone(),
            format!("{}", report.sharded_requests),
            format!("{}", report.max_shards),
            ms(report.latency.map(|l| l.p50)),
            ms(report.latency.map(|l| l.p99)),
            format!("{:.2}%", report.slo_attainment() * 100.0),
        ]);
        runs.push(annotated_run(&report, sharded_arrivals, "admit-all", label));
    }
    scenario_timing("sharded", runs.len(), events, started);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("sharded".into())),
        ("fleet", fleet_json(&sharded_fleet)),
        ("max_shards", Json::Int(sharded_max as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    // Scenario 7: adaptive vs fixed shard width under a deep queue. The
    // cards are bandwidth-binned (1.2 GB/s against the ~1.15 GB/s one
    // FP16 pipeline streams), so two co-located shards oversubscribe the
    // interface and stretch ~1.9×. Interactive Poisson load near the
    // fixed policy's saturation point keeps the queue deep, where
    // pipeline-seconds are the scarce resource: fixed fan-out burns the
    // stretch on every wide dispatch, the cost-model planner prices the
    // backlog, backs off to narrow plans, and sustains the offered rate.
    let binned_fleet = FleetConfig {
        groups: vec![CardGroup::new(
            4,
            SwatConfig::bigbird_dual_fp16(),
            MemoryInterface::new(1.2e9),
        )],
        host_link: MemoryInterface::pcie4_x16(),
    };
    let adaptive_arrivals = ArrivalProcess::poisson(80.0);
    let adaptive_mix = RequestMix::Interactive;
    let adaptive_max = 4usize;
    let mut runs = Vec::new();
    let mut width_rows = Vec::new();
    let mut cells: Vec<(&str, Box<dyn swat_serve::DispatchPolicy>)> = vec![
        ("fixed-4", Box::new(ShardedLeastLoaded::fixed(adaptive_max))),
        (
            "adaptive-4",
            Box::new(ShardedLeastLoaded::new(adaptive_max)),
        ),
        (
            "fixed-4",
            Box::new(ShardedShortestJobFirst::fixed(adaptive_max)),
        ),
        (
            "adaptive-4",
            Box::new(ShardedShortestJobFirst::new(adaptive_max)),
        ),
    ];
    let started = std::time::Instant::now();
    let mut events = 0u64;
    for (label, policy) in &mut cells {
        let spec = TrafficSpec {
            arrivals: adaptive_arrivals,
            mix: adaptive_mix,
            seed,
        };
        let (report, counters) = Simulation::new(&binned_fleet)
            .arrivals_label(format!(
                "{}/{}",
                adaptive_arrivals.name(),
                adaptive_mix.name()
            ))
            .run_profiled(&mut **policy, &spec.requests(requests));
        events += counters.events_total();
        rows.push(summary_row(&format!("adaptive/{label}"), &report));
        let widths = report
            .shard_widths
            .iter()
            .enumerate()
            .map(|(w, n)| format!("{}:{n}", w + 1))
            .collect::<Vec<_>>()
            .join(" ");
        width_rows.push(vec![
            report.policy.clone(),
            widths,
            ms(report.latency.map(|l| l.p50)),
            ms(report.latency.map(|l| l.p99)),
            format!("{:.2}%", report.slo_attainment() * 100.0),
            report
                .cost_prediction
                .map_or("-".to_string(), |p| format!("{:.1e}", p.max_error_s)),
        ]);
        runs.push(annotated_run(
            &report,
            adaptive_arrivals,
            "admit-all",
            label,
        ));
    }
    scenario_timing("adaptive-width", runs.len(), events, started);
    scenarios.push(Json::obj([
        ("scenario", Json::Str("adaptive-width".into())),
        ("fleet", fleet_json(&binned_fleet)),
        ("max_shards", Json::Int(adaptive_max as i64)),
        ("runs", Json::Arr(runs)),
    ]));

    print_table(
        &[
            "scenario", "arrivals", "policy", "rps", "p50 ms", "p95 ms", "p99 ms", "util", "max q",
            "slo viol", "rejected", "preempt", "scale", "swaps", "J",
        ],
        &rows,
    );
    println!("\nsharded scenario, fan-out vs whole-request (poisson, 4 cards):");
    print_table(
        &[
            "policy",
            "sharded reqs",
            "max shards",
            "p50 ms",
            "p99 ms",
            "slo attain",
        ],
        &fanout_rows,
    );
    println!(
        "\nadaptive-width scenario, fan-out discipline under a deep queue \
         (poisson, 4 bandwidth-binned cards):"
    );
    print_table(
        &[
            "policy",
            "width:count",
            "p50 ms",
            "p99 ms",
            "slo attain",
            "pred err s",
        ],
        &width_rows,
    );
    println!("\nautoscale scenario, energy vs SLO (least-loaded, diurnal ramp):");
    print_table(
        &[
            "fleet",
            "scale events",
            "active J",
            "idle J",
            "total J",
            "slo attain",
            "p99 ms",
        ],
        &tradeoff_rows,
    );
    println!("\npriority scenario, per class (least-loaded, bursty overload):");
    print_table(
        &[
            "admission",
            "class",
            "offered",
            "done",
            "shed",
            "slo viol",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
        &class_rows,
    );

    let doc = Json::obj([
        ("bench", Json::Str("serve_sweep".into())),
        ("seed", Json::UInt(seed)),
        ("requests_per_run", Json::Int(requests as i64)),
        ("mix", Json::Str(RequestMix::Production.name().into())),
        ("scenarios", Json::Arr(scenarios)),
    ]);

    let path = "BENCH_serve.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
