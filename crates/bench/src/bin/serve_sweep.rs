//! Fleet-serving sweep: 10,000-request streams through a multi-card SWAT
//! fleet under every (arrival process × dispatch policy) combination,
//! emitting `BENCH_serve.json`.
//!
//! This is the serving-layer counterpart of the paper-figure binaries: it
//! exercises `swat-serve` end to end — Poisson, bursty and diurnal
//! traffic over the production request mix, FIFO / least-loaded /
//! shortest-job-first / head-affinity dispatch — and reports p50/p95/p99
//! latency, queue depth, per-card utilization, energy and SLO violations
//! per cell. Output is bitwise identical for a fixed `--seed`.
//!
//! ```text
//! cargo run --release -p swat-bench --bin serve_sweep [seed]
//! ```

use swat_bench::{banner, print_table};
use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::json::Json;
use swat_serve::policy::all_policies;
use swat_serve::sim::{serve, TrafficSpec};
use swat_workloads::RequestMix;

/// Requests per sweep cell.
const REQUESTS: usize = 10_000;
/// Accelerator cards in the fleet (dual-pipeline: 12 pipelines total).
const CARDS: usize = 6;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(0x5EED);

    let fleet = FleetConfig::standard(CARDS);
    let mix = RequestMix::Production;
    // The production mix averages ≈0.6 s of single-pipeline service per
    // request, so 12 pipelines sustain ≈20 rps. Rates target ≈70% mean
    // utilization — with transient overload inside bursts (4× base) and
    // at the diurnal peak (1.2× capacity), where queues visibly form.
    let arrival_processes = [
        ArrivalProcess::poisson(14.0),
        ArrivalProcess::bursty(8.0),
        ArrivalProcess::diurnal(4.0, 24.0),
    ];

    banner(format!(
        "serve_sweep — {REQUESTS} requests x {} arrivals x 4 policies on {CARDS} cards (seed {seed:#x})"
    , arrival_processes.len()));

    let mut runs = Vec::new();
    let mut rows = Vec::new();
    for arrivals in arrival_processes {
        for mut policy in all_policies() {
            let spec = TrafficSpec {
                arrivals,
                mix,
                seed,
            };
            let report = serve(&fleet, &mut *policy, &spec, REQUESTS);
            rows.push(vec![
                report.arrivals.clone(),
                report.policy.clone(),
                format!("{:.1}", report.throughput_rps),
                format!("{:.1}", report.latency.p50 * 1e3),
                format!("{:.1}", report.latency.p95 * 1e3),
                format!("{:.1}", report.latency.p99 * 1e3),
                format!("{:.0}%", report.fleet_utilization() * 100.0),
                format!("{}", report.queue.max_depth),
                format!("{}", report.slo_violations),
                format!("{}", report.weight_swaps()),
                format!("{:.1}", report.energy_joules),
            ]);
            runs.push(report.to_json());
        }
    }

    print_table(
        &[
            "arrivals", "policy", "rps", "p50 ms", "p95 ms", "p99 ms", "util", "max q", "slo viol",
            "swaps", "J",
        ],
        &rows,
    );

    let card = &fleet.card;
    let doc = Json::obj([
        ("bench", Json::Str("serve_sweep".into())),
        ("seed", Json::UInt(seed)),
        ("requests_per_run", Json::Int(REQUESTS as i64)),
        (
            "fleet",
            Json::obj([
                ("cards", Json::Int(CARDS as i64)),
                ("pipelines_per_card", Json::Int(card.pipelines as i64)),
                (
                    "design",
                    Json::Str(format!(
                        "bigbird-dual {} w{} g{} r{}",
                        card.precision, card.window_tokens, card.global_tokens, card.random_tokens
                    )),
                ),
                ("memory", Json::Str("hbm2-460GBps".into())),
            ]),
        ),
        ("mix", Json::Str(mix.name().into())),
        ("runs", Json::Arr(runs)),
    ]);

    let path = "BENCH_serve.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}
