//! Reproduces **Figure 9**: energy efficiency of SWAT against the
//! Butterfly accelerator (BTF-1/BTF-2) and the MI210 GPU (dense and
//! sliding chunks), in both FP16 and FP32.
//!
//! ```text
//! cargo run -p swat-bench --bin fig9
//! ```

use swat::{SwatAccelerator, SwatConfig};
use swat_baselines::butterfly::{swat_energy_ratio, ButterflyAccelerator};
use swat_baselines::{GpuCostModel, GpuKernel};
use swat_bench::{banner, fmt_ratio, print_table, SWEEP_LENGTHS};

fn main() {
    let h = 64;
    let w = 256;
    let gpu = GpuCostModel::mi210();
    let swat16 = SwatAccelerator::new(SwatConfig::longformer_fp16()).expect("valid config");
    let swat32 = SwatAccelerator::new(SwatConfig::longformer_fp32()).expect("valid config");
    let btf1 = ButterflyAccelerator::btf(1);
    let btf2 = ButterflyAccelerator::btf(2);

    banner("Figure 9 — energy efficiency of SWAT (ratio of baseline energy to SWAT energy)");
    let mut rows = Vec::new();
    for &n in &SWEEP_LENGTHS {
        let t16 = swat16.latency_seconds(n);
        let e16 = swat16.energy_per_attention(n);
        let e32 = swat32.energy_per_attention(n);
        let gpu_dense = gpu.attention_energy(GpuKernel::Dense, n, h);
        let gpu_chunks = gpu.attention_energy(GpuKernel::SlidingChunks { w }, n, h);
        rows.push(vec![
            n.to_string(),
            fmt_ratio(swat_energy_ratio(&btf1, t16, swat16.power_watts(), n)),
            fmt_ratio(swat_energy_ratio(&btf2, t16, swat16.power_watts(), n)),
            fmt_ratio(gpu_dense / e16),
            fmt_ratio(gpu_chunks / e16),
            fmt_ratio(gpu_dense / e32),
            fmt_ratio(gpu_chunks / e32),
        ]);
    }
    print_table(
        &[
            "len",
            "FP16 vs BTF-1",
            "FP16 vs BTF-2",
            "FP16 vs GPU dense",
            "FP16 vs GPU chunks",
            "FP32 vs GPU dense",
            "FP32 vs GPU chunks",
        ],
        &rows,
    );

    println!();
    println!("Paper anchors:");
    let t16k = swat16.latency_seconds(16384);
    println!(
        "  @16384 vs BTF-1: {:.1}x (paper 11.4x), vs BTF-2: {:.1}x (paper 21.9x)",
        swat_energy_ratio(&btf1, t16k, swat16.power_watts(), 16384),
        swat_energy_ratio(&btf2, t16k, swat16.power_watts(), 16384),
    );
    let r =
        |n: usize| gpu.attention_energy(GpuKernel::Dense, n, h) / swat32.energy_per_attention(n);
    println!(
        "  FP32 vs GPU dense: {:.1}x @1K (paper ~20x), {:.1}x @8K (paper 4.2x min), {:.1}x @16K (paper 8.4x)",
        r(1024),
        r(8192),
        r(16384),
    );
    let r16 =
        |n: usize| gpu.attention_energy(GpuKernel::Dense, n, h) / swat16.energy_per_attention(n);
    println!(
        "  FP16 vs GPU dense @16K: {:.1}x (paper headline: ~15x energy efficiency vs GPU)",
        r16(16384),
    );
}
