//! Reproduces **Table 1**: per-stage pipeline timing of the SWAT design
//! (default configuration H=64, 2w=512, FP16), from the timing model,
//! side-by-side with the paper's HLS report. Also prints the FP32 variant
//! and a cycle-accurate schedule cross-check.
//!
//! ```text
//! cargo run -p swat-bench --bin table1
//! ```

use swat::timing::StageTimings;
use swat::trace::simulate_schedule;
use swat::SwatConfig;
use swat_bench::{banner, print_table};

fn main() {
    let cfg16 = SwatConfig::longformer_fp16();
    let cfg32 = SwatConfig::longformer_fp32();
    let model16 = StageTimings::for_config(&cfg16);
    let model32 = StageTimings::for_config(&cfg32);
    let paper = StageTimings::paper_table1();

    banner("Table 1 — pipeline stage timing in cycles (H=64, 2w=512)");
    let stage_rows: Vec<(&str, u64, u64, u64)> = vec![
        ("LOAD", paper.load, model16.load, model32.load),
        (
            "LOAD (random)",
            paper.load_random,
            model16.load_random,
            model32.load_random,
        ),
        ("QK", paper.qk, model16.qk, model32.qk),
        ("SV", paper.sv, model16.sv, model32.sv),
        ("ZRED1", paper.zred1, model16.zred1, model32.zred1),
        ("ZRED2", paper.zred2, model16.zred2, model32.zred2),
        ("ROWSUM1", paper.rowsum1, model16.rowsum1, model32.rowsum1),
        ("ROWSUM2", paper.rowsum2, model16.rowsum2, model32.rowsum2),
        ("DIV&OUT", paper.div_out, model16.div_out, model32.div_out),
    ];
    let rows: Vec<Vec<String>> = stage_rows
        .iter()
        .map(|(name, p, m16, m32)| {
            vec![
                name.to_string(),
                p.to_string(),
                m16.to_string(),
                if m16 == p { "yes".into() } else { "NO".into() },
                m32.to_string(),
            ]
        })
        .collect();
    print_table(
        &["stage", "paper FP16", "model FP16", "match", "model FP32"],
        &rows,
    );

    println!();
    println!(
        "Pipeline II: FP16 {} cycles (paper: 201), FP32 {} cycles (paper: 264)",
        model16.initiation_interval(false),
        model32.initiation_interval(false)
    );

    banner("Cycle-accurate schedule cross-check");
    let pipeline = model16.to_pipeline(false);
    for rows_n in [1usize, 16, 4096] {
        let sched = simulate_schedule(&pipeline, rows_n);
        println!(
            "  {rows_n:>5} rows: simulated {} cycles, closed-form {} cycles, conflict-free: {}",
            sched.total_cycles,
            pipeline.total_cycles(rows_n as u64),
            sched.is_conflict_free()
        );
    }
    println!();
    println!("Stage utilisation over 4096 rows (pipeline balance):");
    let sched = simulate_schedule(&pipeline, 4096);
    for (name, u) in sched.stage_utilization() {
        println!("  {name:<8} {:.1}%", u * 100.0);
    }
}
