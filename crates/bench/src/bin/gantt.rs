//! ASCII Gantt view of the SWAT pipeline schedule — makes the Table 1
//! balance visible: after the fill, a new row completes every II cycles
//! and the QK stage never goes idle.
//!
//! ```text
//! cargo run -p swat-bench --bin gantt
//! ```

use swat::timing::StageTimings;
use swat::trace::simulate_schedule;
use swat::SwatConfig;
use swat_bench::banner;

fn main() {
    let cfg = SwatConfig::longformer_fp16();
    let timings = StageTimings::for_config(&cfg);
    let pipeline = timings.to_pipeline(false);
    let rows = 8;
    let sched = simulate_schedule(&pipeline, rows);

    banner(format!(
        "Pipeline schedule, first {rows} rows (FP16, II={} cycles, '#' = 50 cycles busy)",
        pipeline.initiation_interval()
    ));

    let cycles_per_char = 50u64;
    let width = sched.total_cycles.div_ceil(cycles_per_char) as usize;

    for stage in pipeline.stages() {
        let mut line = vec![b' '; width];
        for iv in sched.intervals.iter().filter(|iv| iv.stage == stage.name) {
            let a = (iv.start / cycles_per_char) as usize;
            let b = (iv.end.div_ceil(cycles_per_char) as usize).min(width);
            let glyph = b'0' + (iv.row % 10) as u8;
            for c in line.iter_mut().take(b).skip(a) {
                *c = glyph;
            }
        }
        println!("{:>8} |{}|", stage.name, String::from_utf8_lossy(&line));
    }

    println!();
    println!("(digits are row indices flowing left to right; QK back-to-back = the II)");
    println!();
    println!(
        "Totals: {} cycles for {rows} rows; closed form {}; conflict-free: {}",
        sched.total_cycles,
        pipeline.total_cycles(rows as u64),
        sched.is_conflict_free()
    );
    println!("Steady-state utilisation over 4096 rows:");
    let long = simulate_schedule(&pipeline, 4096);
    for (name, u) in long.stage_utilization() {
        let bars = (u * 40.0).round() as usize;
        println!("  {name:>8} {:>5.1}% |{}|", u * 100.0, "=".repeat(bars));
    }
}
