//! Extension study: why SWAT chose FP16 over fixed point.
//!
//! A fixed-point MAC is cheaper (one DSP at II=1 vs the FP16 MAC's II=3),
//! but softmax's exponential spans a huge dynamic range. This study runs
//! the same fused window attention in binary16 and in three Q-formats and
//! measures accuracy plus saturation events.
//!
//! ```text
//! cargo run -p swat-bench --bin precision
//! ```

use swat_attention::fused::fused_window_attention_in;
use swat_attention::{reference, SparsityPattern};
use swat_bench::{banner, print_table};
use swat_numeric::fixed::fixed_point_window_attention;
use swat_numeric::{SplitMix64, F16};
use swat_tensor::Matrix;

fn main() {
    let n = 128;
    let h = 16;
    let w = 16;
    let scale = 1.0 / (h as f32).sqrt();

    banner("Datapath precision study — binary16 vs Q-format fixed point on fused window attention");
    println!(
        "({n} tokens, H={h}, 2w={}, per-row max |error| vs f32 reference)",
        2 * w
    );
    println!();

    let mut rows = Vec::new();
    for &input_scale in &[0.25f32, 0.5, 1.0, 2.0, 3.0, 4.0] {
        let mut rng = SplitMix64::new(7);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0) * input_scale;
        let q = Matrix::from_fn(n, h, &mut gen);
        let k = Matrix::from_fn(n, h, &mut gen);
        let v = Matrix::from_fn(n, h, &mut gen);
        let exact =
            reference::masked_attention(&q, &k, &v, &SparsityPattern::sliding_window(n, w), scale);

        let f16 = fused_window_attention_in::<F16>(&q, &k, &v, w, scale);
        let f16_err = if f16.output.as_slice().iter().all(|x| x.is_finite()) {
            format!("{:.2e}", f16.output.max_abs_diff(&exact))
        } else {
            "OVERFLOW".to_string()
        };

        let fx = |frac: &str, out: Vec<f32>, sats: u64| -> String {
            let m = Matrix::from_vec(n, h, out);
            let _ = frac;
            let finite = m.as_slice().iter().all(|x| x.is_finite());
            if finite {
                format!("{:.2e} ({sats} sat)", m.max_abs_diff(&exact))
            } else {
                format!("NaN ({sats} sat)")
            }
        };
        let (o20, s20) = fixed_point_window_attention::<20>(
            q.as_slice(),
            k.as_slice(),
            v.as_slice(),
            n,
            h,
            w,
            scale,
        );
        let (o16, s16) = fixed_point_window_attention::<16>(
            q.as_slice(),
            k.as_slice(),
            v.as_slice(),
            n,
            h,
            w,
            scale,
        );
        let (o10, s10) = fixed_point_window_attention::<10>(
            q.as_slice(),
            k.as_slice(),
            v.as_slice(),
            n,
            h,
            w,
            scale,
        );

        rows.push(vec![
            format!("{input_scale:.2}"),
            f16_err,
            fx("20", o20, s20),
            fx("16", o16, s16),
            fx("10", o10, s10),
        ]);
    }
    print_table(
        &["input scale", "binary16", "Q11.20", "Q15.16", "Q21.10"],
        &rows,
    );

    println!();
    println!("Reading:");
    println!("  - at layer-norm scales (<=1) every format works; 32-bit fixed point is even");
    println!("    more accurate than binary16 — but it doubles the K/V BRAM footprint and");
    println!("    off-chip traffic (32b vs 16b), i.e. it costs the FP32 row of Table 2;");
    println!("  - as scores grow, the exponential's range defeats everyone: the Q-formats");
    println!("    saturate (gracefully — bounded error, counted above) and binary16");
    println!("    overflows to infinity. A *16-bit* Q-format would have to split 16 bits");
    println!("    between exp's range and the scores' resolution and loses both ways;");
    println!("    binary16's 5 exponent bits cover the whole usable range in 16 bits.");
    println!("    That is the trade SWAT makes: FP16 semantics at II=3, half the memory");
    println!("    of a fixed-point design with comparable robustness (Section 4).");
}
