//! Reproduces **Figure 3**: execution time and memory usage per attention
//! for GPU dense, GPU sliding chunks, and SWAT in FP16/FP32, across input
//! lengths 512…16384.
//!
//! ```text
//! cargo run -p swat-bench --bin fig3
//! ```

use swat::{SwatAccelerator, SwatConfig};
use swat_baselines::{GpuCostModel, GpuKernel};
use swat_bench::{banner, fmt_mib, fmt_ms, print_table, FIG3_LENGTHS};

fn main() {
    let h = 64;
    let w = 256; // 2w = 512 window tokens
    let gpu = GpuCostModel::mi210();
    let swat16 = SwatAccelerator::new(SwatConfig::longformer_fp16()).expect("valid config");
    let swat32 = SwatAccelerator::new(SwatConfig::longformer_fp32()).expect("valid config");

    banner("Figure 3 (left) — execution time per attention, ms");
    let mut rows = Vec::new();
    for &n in &FIG3_LENGTHS {
        rows.push(vec![
            n.to_string(),
            fmt_ms(gpu.attention_seconds(GpuKernel::Dense, n, h)),
            fmt_ms(gpu.attention_seconds(GpuKernel::SlidingChunks { w }, n, h)),
            fmt_ms(swat16.latency_seconds(n)),
            fmt_ms(swat32.latency_seconds(n)),
        ]);
    }
    print_table(
        &[
            "len",
            "Dense (GPU|FP32)",
            "Chunks (GPU|FP32)",
            "SWAT (FPGA|FP16)",
            "SWAT (FPGA|FP32)",
        ],
        &rows,
    );

    banner("Figure 3 (right) — memory per attention, MiB (score/working set)");
    let mut rows = Vec::new();
    for &n in &FIG3_LENGTHS {
        let dense = gpu.attention_cost(GpuKernel::Dense, n, h);
        let chunks = gpu.attention_cost(GpuKernel::SlidingChunks { w }, n, h);
        rows.push(vec![
            n.to_string(),
            fmt_mib(dense.score_memory_bytes),
            fmt_mib(chunks.score_memory_bytes),
            fmt_mib(swat16.offchip_bytes(n) + swat16.kv_buffer_bytes()),
        ]);
    }
    print_table(&["len", "Dense (GPU)", "Chunks (GPU)", "SWAT"], &rows);

    println!();
    println!("Shape checks (the paper's reading of Figure 3):");
    let d16k = gpu.attention_seconds(GpuKernel::Dense, 16384, h);
    let c16k = gpu.attention_seconds(GpuKernel::SlidingChunks { w }, 16384, h);
    println!(
        "  chunks/dense time at 16K: {:.2} (the chunked kernel does not beat dense)",
        c16k / d16k
    );
    println!(
        "  SWAT FP32 vs GPU dense at 4K..8K: {:.2}..{:.2} (comparable)",
        swat32.latency_seconds(4096) / gpu.attention_seconds(GpuKernel::Dense, 4096, h),
        swat32.latency_seconds(8192) / gpu.attention_seconds(GpuKernel::Dense, 8192, h),
    );
    println!(
        "  SWAT FP32 vs GPU dense at 16K: {:.2} (better scalability for long input)",
        swat32.latency_seconds(16384) / d16k
    );
    println!(
        "  redundancy of sliding chunks (paper: 1/2 - 1/(4 chunks)): {:.3} at 64 chunks",
        swat_attention::chunks::redundancy_ratio(64)
    );
}
