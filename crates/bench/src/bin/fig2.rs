//! Reproduces **Figure 2**'s quantitative content: the sliding-chunks
//! redundancy. The figure itself is illustrative; its claim is the
//! formula `1/2 − 1/(4·|chunks|)` and the overlap/corner structure, which
//! we verify against the *measured* redundancy of the actual chunked
//! implementation.
//!
//! ```text
//! cargo run -p swat-bench --bin fig2
//! ```

use swat_attention::chunks::{redundancy_ratio, sliding_chunks_attention};
use swat_bench::{banner, print_table};
use swat_numeric::SplitMix64;
use swat_tensor::Matrix;

fn main() {
    banner("Figure 2 — sliding-chunks redundancy: paper formula vs measured");
    let w = 16;
    let h = 8;
    println!(
        "(window half-width w={w}, chunks of 2w={} with stride w)",
        2 * w
    );
    println!();

    let mut rows = Vec::new();
    for &n in &[64usize, 128, 256, 512, 1024, 4096] {
        let mut rng = SplitMix64::new(2);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
        let q = Matrix::from_fn(n, h, &mut gen);
        let k = Matrix::from_fn(n, h, &mut gen);
        let v = Matrix::from_fn(n, h, &mut gen);
        let run = sliding_chunks_attention(&q, &k, &v, w, 1.0);
        rows.push(vec![
            n.to_string(),
            run.num_chunks.to_string(),
            format!("{:.4}", redundancy_ratio(run.num_chunks)),
            format!("{:.4}", run.counts.redundancy()),
        ]);
    }
    print_table(&["len", "chunks", "formula 1/2-1/(4c)", "measured"], &rows);

    println!();
    println!("Both converge to 50% wasted work as the chunk count grows — the overlap");
    println!("(grey) and corner (dashed) regions of Figure 2b. SWAT's per-row dataflow");
    println!("computes the band exactly and wastes nothing (redundancy 0 by construction).");
}
