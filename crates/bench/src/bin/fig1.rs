//! Reproduces **Figure 1**: FLOPs and MOPs breakdown (Linear / Attention /
//! FFN) of one transformer encoder layer as the input length grows.
//!
//! ```text
//! cargo run -p swat-bench --bin fig1
//! ```

use swat_bench::{banner, print_table};
use swat_model::flops::{layer_costs, AttentionKind, FIGURE1_LENGTHS};
use swat_model::ModelConfig;

fn main() {
    let cfg = ModelConfig::longformer_base();
    banner(format!(
        "Figure 1 — FLOPs/MOPs breakdown per layer ({}: d={}, {} heads, dense attention)",
        cfg.name, cfg.d_model, cfg.heads
    ));

    let mut rows = Vec::new();
    for &n in &FIGURE1_LENGTHS {
        let c = layer_costs(&cfg, n, AttentionKind::Dense);
        let (lf, af, ff) = c.flops_shares();
        let (lm, am, fm) = c.mops_shares();
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", lf),
            format!("{:.3}", af),
            format!("{:.3}", ff),
            format!("{:.3}", lm),
            format!("{:.3}", am),
            format!("{:.3}", fm),
        ]);
    }
    print_table(
        &[
            "len",
            "FLOP:lin",
            "FLOP:attn",
            "FLOP:ffn",
            "MOP:lin",
            "MOP:attn",
            "MOP:ffn",
        ],
        &rows,
    );

    println!();
    println!("Shape checks (the paper's reading of Figure 1):");
    let short = layer_costs(&cfg, 128, AttentionKind::Dense);
    let long = layer_costs(&cfg, 16384, AttentionKind::Dense);
    println!(
        "  attention FLOPs share grows {:.1}% -> {:.1}%",
        short.attention_flops_share() * 100.0,
        long.attention_flops_share() * 100.0
    );
    println!(
        "  attention MOPs share grows {:.1}% -> {:.1}%",
        short.attention_mops_share() * 100.0,
        long.attention_mops_share() * 100.0
    );

    banner("Same model with sliding-window attention (2w = 512): linear scaling");
    let mut rows = Vec::new();
    for &n in &FIGURE1_LENGTHS {
        let c = layer_costs(&cfg, n, AttentionKind::Window);
        rows.push(vec![
            n.to_string(),
            format!("{:.2e}", c.attention_flops as f64),
            format!("{:.3}", c.attention_flops_share()),
        ]);
    }
    print_table(&["len", "attn FLOPs", "attn share"], &rows);
}
