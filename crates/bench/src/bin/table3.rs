//! Reproduces **Table 3**: LRA accuracy gains of window-attention models
//! over the full-FFT Butterfly model (the paper's published numbers), and
//! runs this reproduction's *attention-fidelity proxy* showing the same
//! qualitative ordering without training (see DESIGN.md's substitution
//! table).
//!
//! ```text
//! cargo run -p swat-bench --bin table3
//! ```

use swat_bench::{banner, print_table};
use swat_workloads::fidelity::{run_experiment, Approximation};
use swat_workloads::generators::Workload;
use swat_workloads::records::table3;

fn main() {
    banner("Table 3 (recorded) — accuracy gain over full-FFT Butterfly on LRA, percentage points");
    let rows: Vec<Vec<String>> = table3()
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                format!("{:+.2}", r.image),
                format!("{:+.2}", r.pathfinder),
                format!("{:+.2}", r.text),
                format!("{:+.2}", r.listops),
                format!("{:+.2}", r.average),
            ]
        })
        .collect();
    print_table(
        &["model", "Image", "PathFinder", "Text", "ListOps", "AVG"],
        &rows,
    );

    banner("Fidelity proxy (this reproduction) — how well each pattern reconstructs dense softmax attention");
    println!(
        "(fidelity = 1/(1+relative error) vs full attention; sequences of 256 tokens, 3 seeds)"
    );
    println!();
    let scores = run_experiment(256, 16, 3);
    let names: Vec<&str> = vec!["window", "bigbird", "butterfly-pattern", "fourier-mix"];
    let mut rows = Vec::new();
    for name in &names {
        let mut row = vec![name.to_string()];
        let mut sum = 0.0;
        for wl in Workload::ALL {
            let s = scores
                .iter()
                .find(|s| s.approximation.name() == *name && s.workload == wl)
                .expect("experiment covers the grid");
            row.push(format!("{:.3}", s.fidelity()));
            sum += s.fidelity();
        }
        row.push(format!("{:.3}", sum / Workload::ALL.len() as f64));
        rows.push(row);
    }
    let mut headers = vec!["pattern"];
    let workload_names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
    headers.extend(workload_names.iter());
    headers.push("AVG");
    print_table(&headers, &rows);

    println!();
    println!("Qualitative claims carried by the proxy:");
    let avg = |name: &str| -> f64 {
        scores
            .iter()
            .filter(|s| s.approximation.name() == name)
            .map(|s| s.fidelity())
            .sum::<f64>()
            / Workload::ALL.len() as f64
    };
    println!(
        "  window-family patterns beat FFT mixing on average: window {:.3} / bigbird {:.3} vs fourier {:.3}",
        avg("window"),
        avg("bigbird"),
        avg("fourier-mix")
    );
    let local = |a: &str| {
        scores
            .iter()
            .find(|s| s.approximation.name() == a && s.workload == Workload::LocalTexture)
            .unwrap()
            .fidelity()
    };
    println!(
        "  largest margin on vision-like local tasks (Table 3's Image column): window {:.3} vs fourier {:.3}",
        local("window"),
        local("fourier-mix")
    );
    let _ = Approximation::FourierMix; // referenced for doc purposes
}
