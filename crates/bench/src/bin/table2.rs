//! Reproduces **Table 2**: resource usage on the U55C/VCU128 for the four
//! SWAT configurations plus the Butterfly baseline row.
//!
//! ```text
//! cargo run -p swat-bench --bin table2
//! ```

use swat::resources::{paper_table2, utilization};
use swat::SwatConfig;
use swat_baselines::ButterflyAccelerator;
use swat_bench::{banner, print_table};

fn main() {
    banner("Table 2 — resource usage on U55C/VCU128 (estimated vs paper)");

    let configs = [
        SwatConfig::longformer_fp16(),
        SwatConfig::bigbird_fp16(),
        SwatConfig::bigbird_dual_fp16(),
        SwatConfig::longformer_fp32(),
    ];
    let paper = paper_table2();

    let pct = |x: f64| format!("{:.0}%", x * 100.0);
    let mut rows = Vec::new();
    for (cfg, (name, expected)) in configs.iter().zip(&paper) {
        let u = utilization(cfg);
        rows.push(vec![
            name.to_string(),
            format!("{} ({})", pct(u.dsp), pct(expected.dsp)),
            format!("{} ({})", pct(u.lut), pct(expected.lut)),
            format!("{} ({})", pct(u.ff), pct(expected.ff)),
            format!("{} ({})", pct(u.bram), pct(expected.bram)),
        ]);
    }
    let btf = ButterflyAccelerator::utilization();
    rows.push(vec![
        "Butterfly (FP16, 120-BE)".to_string(),
        format!("{} (paper)", pct(btf.dsp)),
        format!("{} (paper)", pct(btf.lut)),
        format!("{} (paper)", pct(btf.ff)),
        format!("{} (paper)", pct(btf.bram)),
    ]);

    print_table(
        &[
            "design",
            "DSP est(paper)",
            "LUT est(paper)",
            "FF est(paper)",
            "BRAM est(paper)",
        ],
        &rows,
    );

    println!();
    println!("Derived power at 450 MHz (calibrated XPE-style model):");
    for (cfg, (name, _)) in configs.iter().zip(&paper) {
        let accel = swat::SwatAccelerator::new(cfg.clone()).expect("valid config");
        println!("  {name:<28} {:>6.1} W", accel.power_watts());
    }
    println!(
        "  {:<28} {:>6.1} W (hybrid-engine activity)",
        "Butterfly (BTF-1)",
        ButterflyAccelerator::btf(1).power_watts()
    );
}
