//! Capacity-planning autotuner: a deterministic, seeded search over a
//! [`ScenarioSpec`] template's free axes, emitting a Pareto frontier
//! into `BENCH_plan.json`.
//!
//! The question production operators ask — *fewest cards / least energy
//! to hold p99 under X ms at Y rps* — has no closed form once
//! per-request compute is variable (decode steps with seeded early
//! exit), so this binary answers it by searched simulation:
//!
//! 1. **Template** — a decode-heavy production workload on a standard
//!    FP16 fleet, as a declarative spec. Four axes are free: fleet size
//!    (`cards`), shard-width cap (`max_shards`), autoscaling (off or
//!    min-2-cards), and decode batching (continuous vs whole-job).
//! 2. **Prune** — before simulating anything, the PR-5 cost model
//!    prices the template trace once (demand-seconds at expected decode
//!    steps per request) and every candidate whose fleet cannot clear
//!    that demand inside the trace span — utilization estimate
//!    `rho = demand_s / (span_s × pipelines) ≥ 1` — is skipped as
//!    saturated. Pruned candidates are counted and listed in the JSON.
//! 3. **Search** — a seeded grid over the axes, then deterministic
//!    refinement generations: every frontier point proposes its
//!    one-axis neighbours (cards ± 1, adjacent shard cap, toggles),
//!    novel proposals are pruned or simulated, and the frontier is
//!    recomputed — until a generation yields nothing new or the
//!    simulation budget runs out. Surviving cells run on the shared
//!    `--jobs` scoped-thread pool; per-generation CPU-seconds go to
//!    stderr through the same accounting as `serve_sweep`'s scenarios.
//! 4. **Frontier** — the non-dominated set over (cards ↓, energy ↓,
//!    p99 ↓, SLO attainment ↑), plus a recommendation: the fewest-cards
//!    (then least-energy) frontier point holding p99 under the target.
//!
//! Every step is seeded and order-fixed, so `BENCH_plan.json` and
//! stdout are byte-identical across runs and `--jobs` values — CI
//! sha-compares a double run.
//!
//! ```text
//! cargo run --release -p swat-bench --bin capacity_plan \
//!     [--jobs N] [--budget B] [--rps X] [--p99-ms Y] [seed] [requests]
//! ```

use swat_bench::{banner, print_table, run_cells, scenario_timing, Cell};
use swat_serve::arrival::ArrivalProcess;
use swat_serve::cost::CostModel;
use swat_serve::json::Json;
use swat_serve::metrics::ServeReport;
use swat_serve::scale::AutoscalerConfig;
use swat_serve::scenario::{FleetSpec, PolicySpec, ScenarioSpec, TrafficModel};
use swat_serve::sim::DecodeBatching;
use swat_workloads::{DecodeMix, RequestMix};

/// Default requests per simulated cell.
const DEFAULT_REQUESTS: usize = 4_000;
/// Default simulation budget (cells actually run, pruned ones are free).
const DEFAULT_BUDGET: usize = 64;
/// Default offered load the plan must hold.
const DEFAULT_RPS: f64 = 4.0;
/// Default p99 target for the recommendation, milliseconds. The
/// production mix's document-scale requests owe multi-second intrinsic
/// service once decode steps are layered on, so tail targets are
/// seconds-scale; 10 s is where shard width starts saving whole cards.
const DEFAULT_P99_MS: f64 = 10_000.0;
/// Largest fleet the search will propose.
const MAX_CARDS: usize = 12;
/// The shard-width axis (refinement moves between adjacent entries).
const SHARD_AXIS: [usize; 3] = [1, 2, 4];
/// The fleet-size axis of the initial grid.
const CARD_AXIS: [usize; 5] = [2, 3, 4, 6, 8];
/// Refinement-generation cap; the search normally converges first.
const MAX_GENERATIONS: usize = 8;

/// One point in the search space: the template's four free axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Candidate {
    cards: usize,
    max_shards: usize,
    autoscale: bool,
    whole_job: bool,
}

impl Candidate {
    /// Stable config key — sort order of `Candidate` is the tuple order,
    /// so every listing in stdout and JSON is `--jobs`-independent.
    fn key(&self) -> String {
        format!(
            "c{}-s{}-{}-{}",
            self.cards,
            self.max_shards,
            if self.autoscale { "elastic" } else { "static" },
            if self.whole_job {
                "whole-job"
            } else {
                "continuous"
            }
        )
    }

    /// One-axis neighbours, clamped to the search space.
    fn neighbours(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        if self.cards > 1 {
            out.push(Candidate {
                cards: self.cards - 1,
                ..*self
            });
        }
        if self.cards < MAX_CARDS {
            out.push(Candidate {
                cards: self.cards + 1,
                ..*self
            });
        }
        if let Some(i) = SHARD_AXIS.iter().position(|&s| s == self.max_shards) {
            if i > 0 {
                out.push(Candidate {
                    max_shards: SHARD_AXIS[i - 1],
                    ..*self
                });
            }
            if i + 1 < SHARD_AXIS.len() {
                out.push(Candidate {
                    max_shards: SHARD_AXIS[i + 1],
                    ..*self
                });
            }
        }
        out.push(Candidate {
            autoscale: !self.autoscale,
            ..*self
        });
        out.push(Candidate {
            whole_job: !self.whole_job,
            ..*self
        });
        out
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("config", Json::Str(self.key())),
            ("cards", Json::Int(self.cards as i64)),
            ("max_shards", Json::Int(self.max_shards as i64)),
            ("autoscale", Json::Bool(self.autoscale)),
            ("batching", Json::Str(self.batching().name().into())),
        ])
    }

    fn batching(&self) -> DecodeBatching {
        if self.whole_job {
            DecodeBatching::WholeJob
        } else {
            DecodeBatching::Continuous
        }
    }
}

/// The template workload every candidate serves: decode-heavy production
/// traffic (2–6 steps, 20% early exit — ≈2.9 expected steps) at `rps` on
/// a standard FP16 fleet. Only the candidate's axes vary.
fn spec_for(c: Candidate, rps: f64, seed: u64, requests: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: c.key(),
        fleet: FleetSpec::standard(c.cards),
        arrivals: ArrivalProcess::poisson(rps),
        traffic: TrafficModel::Mix {
            mix: RequestMix::Production,
            decode: Some(DecodeMix {
                min_steps: 2,
                max_steps: 6,
                exit_prob: 0.2,
            }),
        },
        policy: PolicySpec::ShardedShortestJobFirst {
            max_shards: c.max_shards,
            adaptive: true,
        },
        autoscale: c
            .autoscale
            .then(|| AutoscalerConfig::standard().with_min_cards(c.cards.min(2))),
        batching: c.batching(),
        seed,
        requests,
        ..ScenarioSpec::default()
    }
}

/// A simulated point's planning metrics.
struct Point {
    candidate: Candidate,
    rho: f64,
    report: ServeReport,
}

impl Point {
    fn p99_ms(&self) -> Option<f64> {
        self.report.latency.map(|l| l.p99 * 1e3)
    }

    fn energy_j(&self) -> f64 {
        self.report.total_energy_joules()
    }

    fn slo(&self) -> f64 {
        self.report.slo_attainment()
    }
}

/// Whether `a` Pareto-dominates `b` on (cards ↓, energy ↓, p99 ↓,
/// SLO attainment ↑). Only defined for points with a latency
/// distribution; a fully-shed point dominates nothing.
fn dominates(a: &Point, b: &Point) -> bool {
    let (Some(ap), Some(bp)) = (a.p99_ms(), b.p99_ms()) else {
        return false;
    };
    let no_worse = a.candidate.cards <= b.candidate.cards
        && a.energy_j() <= b.energy_j()
        && ap <= bp
        && a.slo() >= b.slo();
    let strictly_better = a.candidate.cards < b.candidate.cards
        || a.energy_j() < b.energy_j()
        || ap < bp
        || a.slo() > b.slo();
    no_worse && strictly_better
}

/// Indices of the non-dominated points (frontier), in `points` order.
fn frontier_of(points: &[Point]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            points[i].p99_ms().is_some()
                && (0..points.len()).all(|j| j == i || !dominates(&points[j], &points[i]))
        })
        .collect()
}

/// Prints the usage line and exits with status 2 — unparseable arguments
/// should read as operator error, not a crash.
fn usage(problem: &str) -> ! {
    eprintln!("capacity_plan: {problem}");
    eprintln!(
        "usage: capacity_plan [--jobs N] [--budget B] [--rps X] [--p99-ms Y] [seed] [requests]"
    );
    eprintln!("  --jobs N    worker threads for simulated cells (default 1;");
    eprintln!("              output is byte-identical for every N)");
    eprintln!(
        "  --budget B  max cells to simulate across all generations (default {DEFAULT_BUDGET})"
    );
    eprintln!("  --rps X     offered load the plan must hold (default {DEFAULT_RPS})");
    eprintln!("  --p99-ms Y  p99 target for the recommendation (default {DEFAULT_P99_MS})");
    eprintln!("  seed        u64 search seed (default 0x5EED)");
    eprintln!(
        "  requests    requests per simulated cell (default {DEFAULT_REQUESTS}, must be > 0)"
    );
    eprintln!();
    eprintln!("searches fleet size x shard cap x autoscale x batching for the fewest-");
    eprintln!("cards / least-energy configurations holding the p99 target, pruning");
    eprintln!("cost-model-saturated fleets before simulation; emits BENCH_plan.json.");
    std::process::exit(2);
}

fn parse_flag_value(
    args: &mut impl Iterator<Item = String>,
    arg: &str,
    flag: &str,
) -> Option<String> {
    let rest = arg.strip_prefix(flag)?;
    match rest.strip_prefix('=') {
        Some(v) => Some(v.to_string()),
        None if rest.is_empty() => Some(
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value"))),
        ),
        _ => None,
    }
}

fn main() {
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut jobs = 1usize;
    let mut budget = DEFAULT_BUDGET;
    let mut rps = DEFAULT_RPS;
    let mut p99_target_ms = DEFAULT_P99_MS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(value) = parse_flag_value(&mut args, &arg, "--jobs") {
            jobs = value.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("--jobs must be a positive integer, got {value:?}"))
            });
        } else if let Some(value) = parse_flag_value(&mut args, &arg, "--budget") {
            budget = value.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!(
                    "--budget must be a positive integer, got {value:?}"
                ))
            });
        } else if let Some(value) = parse_flag_value(&mut args, &arg, "--rps") {
            rps = value
                .parse()
                .ok()
                .filter(|x: &f64| x.is_finite() && *x > 0.0)
                .unwrap_or_else(|| {
                    usage(&format!("--rps must be a positive number, got {value:?}"))
                });
        } else if let Some(value) = parse_flag_value(&mut args, &arg, "--p99-ms") {
            p99_target_ms = value
                .parse()
                .ok()
                .filter(|x: &f64| x.is_finite() && *x > 0.0)
                .unwrap_or_else(|| {
                    usage(&format!(
                        "--p99-ms must be a positive number, got {value:?}"
                    ))
                });
        } else if arg.starts_with("--") {
            usage(&format!("unexpected argument {arg:?}"));
        } else if seed.is_none() {
            seed = Some(arg.parse().unwrap_or_else(|_| {
                usage(&format!("seed must be an unsigned integer, got {arg:?}"))
            }));
        } else if requests.is_none() {
            requests = Some(arg.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("requests must be a positive integer, got {arg:?}"))
            }));
        } else {
            usage(&format!("unexpected argument {arg:?}"));
        }
    }
    let seed = seed.unwrap_or(0x5EED);
    let requests = requests.unwrap_or(DEFAULT_REQUESTS);

    banner(format!(
        "capacity_plan — hold p99 < {p99_target_ms:.0} ms at {rps} rps, \
         {requests} requests/cell, budget {budget} cells (seed {seed:#x})"
    ));

    // Price the template trace once: the workload (and so its
    // demand-seconds) is identical for every candidate — only the fleet
    // serving it varies — so the saturation estimate reduces to a
    // per-fleet-size utilization check. Expected decode steps (not the
    // seeded realization) keep the estimate a *forecast*, exactly what a
    // planner would have before running anything.
    let reference = spec_for(
        Candidate {
            cards: 1,
            max_shards: 1,
            autoscale: false,
            whole_job: false,
        },
        rps,
        seed,
        requests,
    );
    let one_card = reference.fleet.config();
    let pipelines_per_card = one_card.total_pipelines();
    let cost = CostModel::for_fleet(&one_card.build().expect("one standard card builds"));
    let trace = reference.trace();
    let span_s = trace.last().expect("non-empty trace").arrival - trace[0].arrival;
    let demand_s: f64 = trace
        .iter()
        .map(|r| cost.card(0).service_seconds(&r.shape) * r.decode.expected_steps_from(0))
        .sum();
    let rho_for = |cards: usize| demand_s / (span_s * (cards * pipelines_per_card) as f64);
    println!(
        "template: {:.1} demand-seconds over a {:.1} s trace span \
         ({} requests, expected decode steps priced per request)",
        demand_s, span_s, requests
    );
    println!(
        "pruning:  rho(cards) = demand / (span x 2 x cards) >= 1 is saturated; \
         rho(1) = {:.2}",
        rho_for(1)
    );

    // The initial grid, then frontier-neighbourhood refinement. All
    // bookkeeping is in sorted candidate order so nothing downstream
    // depends on --jobs scheduling.
    let mut proposals: Vec<Candidate> = Vec::new();
    for cards in CARD_AXIS {
        for max_shards in SHARD_AXIS {
            for autoscale in [false, true] {
                for whole_job in [false, true] {
                    proposals.push(Candidate {
                        cards,
                        max_shards,
                        autoscale,
                        whole_job,
                    });
                }
            }
        }
    }
    proposals.sort();

    let mut seen: Vec<Candidate> = Vec::new();
    let mut pruned: Vec<(Candidate, f64)> = Vec::new();
    let mut points: Vec<Point> = Vec::new();
    let mut generations = 0usize;
    let mut budget_exhausted = false;

    while !proposals.is_empty() && generations < MAX_GENERATIONS {
        // Partition this generation's novel proposals into saturated
        // (pruned, never simulated) and runnable.
        let mut runnable: Vec<Candidate> = Vec::new();
        for c in proposals.drain(..) {
            if seen.contains(&c) {
                continue;
            }
            seen.push(c);
            let rho = rho_for(c.cards);
            if rho >= 1.0 {
                pruned.push((c, rho));
            } else {
                runnable.push(c);
            }
        }
        let remaining = budget.saturating_sub(points.len());
        if runnable.len() > remaining {
            runnable.truncate(remaining);
            budget_exhausted = true;
        }
        if runnable.is_empty() {
            break;
        }

        let cells: Vec<Cell<(Candidate, ServeReport, u64)>> = runnable
            .iter()
            .map(|&c| {
                let spec = spec_for(c, rps, seed, requests);
                let cell: Cell<(Candidate, ServeReport, u64)> = Box::new(move || {
                    let (report, counters) = spec
                        .run_profiled()
                        .expect("planner template specs are valid");
                    (c, report, counters.events_total())
                });
                cell
            })
            .collect();
        let outs = run_cells(cells, jobs);
        let events = outs.iter().map(|o| o.value.2).sum::<u64>();
        let wall = outs.iter().map(|o| o.wall_s).sum::<f64>();
        scenario_timing(&format!("plan-gen{generations}"), outs.len(), events, wall);
        for out in outs {
            let (candidate, report, _) = out.value;
            points.push(Point {
                candidate,
                rho: rho_for(candidate.cards),
                report,
            });
        }
        points.sort_by_key(|p| p.candidate);
        generations += 1;
        if budget_exhausted {
            break;
        }

        // Next generation: every frontier point's one-axis neighbours.
        let frontier = frontier_of(&points);
        proposals = frontier
            .iter()
            .flat_map(|&i| points[i].candidate.neighbours())
            .collect();
        proposals.sort();
        proposals.dedup();
    }

    let frontier = frontier_of(&points);
    let on_frontier = |i: usize| frontier.contains(&i);

    // The recommendation: fewest cards, then least energy, among
    // frontier points holding the p99 target.
    let recommendation = frontier
        .iter()
        .copied()
        .filter(|&i| points[i].p99_ms().is_some_and(|p| p <= p99_target_ms))
        .min_by(|&a, &b| {
            let pa = &points[a];
            let pb = &points[b];
            pa.candidate
                .cards
                .cmp(&pb.candidate.cards)
                .then(pa.energy_j().total_cmp(&pb.energy_j()))
                .then(pa.candidate.cmp(&pb.candidate))
        });

    let fmt_ms = |v: Option<f64>| v.map_or("-".to_string(), |p| format!("{p:.1}"));
    println!(
        "\nsearch: {} candidates explored, {} pruned as saturated, {} simulated, \
         {generations} generations{}",
        seen.len(),
        pruned.len(),
        points.len(),
        if budget_exhausted {
            " (budget exhausted)"
        } else {
            ""
        }
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                p.candidate.key(),
                format!("{:.2}", p.rho),
                format!("{:.1}", p.report.throughput_rps),
                fmt_ms(p.p99_ms()),
                format!("{:.2}%", p.slo() * 100.0),
                format!("{:.1}", p.energy_j()),
                if on_frontier(i) { "*" } else { "" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "config",
            "rho",
            "rps",
            "p99 ms",
            "slo attain",
            "J",
            "pareto",
        ],
        &rows,
    );
    match recommendation {
        Some(i) => {
            let p = &points[i];
            println!(
                "\nplan: {} — {} cards hold p99 {} ms (target {p99_target_ms:.0} ms) \
                 at {:.1} J",
                p.candidate.key(),
                p.candidate.cards,
                fmt_ms(p.p99_ms()),
                p.energy_j()
            );
        }
        None => println!(
            "\nplan: no searched configuration holds p99 < {p99_target_ms:.0} ms \
             at {rps} rps — raise the budget or the fleet cap"
        ),
    }

    let point_json = |i: usize, p: &Point| {
        let mut pairs = match p.candidate.to_json() {
            Json::Obj(pairs) => pairs,
            other => unreachable!("candidate json is an object, got {other:?}"),
        };
        pairs.extend([
            ("rho".to_string(), Json::Num(p.rho)),
            (
                "throughput_rps".to_string(),
                Json::Num(p.report.throughput_rps),
            ),
            ("p99_ms".to_string(), Json::maybe(p.p99_ms(), Json::Num)),
            ("slo_attainment".to_string(), Json::Num(p.slo())),
            ("energy_j".to_string(), Json::Num(p.energy_j())),
            (
                "completed".to_string(),
                Json::Int(p.report.completed as i64),
            ),
            ("rejected".to_string(), Json::Int(p.report.rejected as i64)),
            ("pareto".to_string(), Json::Bool(on_frontier(i))),
        ]);
        Json::Obj(pairs)
    };

    let doc = Json::obj([
        ("bench", Json::Str("capacity_plan".into())),
        ("seed", Json::UInt(seed)),
        ("requests_per_cell", Json::Int(requests as i64)),
        (
            "target",
            Json::obj([
                ("rps", Json::Num(rps)),
                ("p99_ms", Json::Num(p99_target_ms)),
            ]),
        ),
        ("template", reference.to_json()),
        (
            "axes",
            Json::obj([
                (
                    "cards",
                    Json::arr(CARD_AXIS.iter().map(|&c| Json::Int(c as i64))),
                ),
                (
                    "max_shards",
                    Json::arr(SHARD_AXIS.iter().map(|&s| Json::Int(s as i64))),
                ),
                (
                    "autoscale",
                    Json::arr([Json::Bool(false), Json::Bool(true)]),
                ),
                (
                    "batching",
                    Json::arr([
                        Json::Str("continuous".into()),
                        Json::Str("whole-job".into()),
                    ]),
                ),
            ]),
        ),
        (
            "pruning_rule",
            Json::Str("rho = demand_seconds / (span_seconds * pipelines) >= 1".into()),
        ),
        ("demand_seconds", Json::Num(demand_s)),
        ("span_seconds", Json::Num(span_s)),
        ("pipelines_per_card", Json::Int(pipelines_per_card as i64)),
        ("explored", Json::Int(seen.len() as i64)),
        ("pruned", Json::Int(pruned.len() as i64)),
        ("simulated", Json::Int(points.len() as i64)),
        ("generations", Json::Int(generations as i64)),
        ("budget", Json::Int(budget as i64)),
        ("budget_exhausted", Json::Bool(budget_exhausted)),
        (
            "pruned_configs",
            Json::arr(pruned.iter().map(|&(c, rho)| {
                let mut pairs = match c.to_json() {
                    Json::Obj(pairs) => pairs,
                    other => unreachable!("candidate json is an object, got {other:?}"),
                };
                pairs.push(("rho".to_string(), Json::Num(rho)));
                Json::Obj(pairs)
            })),
        ),
        (
            "points",
            Json::arr(points.iter().enumerate().map(|(i, p)| point_json(i, p))),
        ),
        (
            "frontier",
            Json::arr(frontier.iter().map(|&i| point_json(i, &points[i]))),
        ),
        (
            "recommendation",
            Json::maybe(recommendation, |i| point_json(i, &points[i])),
        ),
    ]);

    let path = "BENCH_plan.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_plan.json");
    println!("\nwrote {path}");
}
