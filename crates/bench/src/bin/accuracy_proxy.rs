//! The trained accuracy proxy behind Table 3: frozen attention + ridge
//! readout on synthetic tasks with controlled information pathways.
//!
//! Unlike the fidelity experiment (`table3`), this one reports *task
//! accuracy*, so "window attention cannot retrieve distant needles" and
//! "Fourier mixing cannot see local coherence" become measured numbers.
//!
//! ```text
//! cargo run -p swat-bench --bin accuracy_proxy
//! ```

use swat_bench::{banner, print_table};
use swat_workloads::readout::{evaluate, standard_mechanisms, Mechanism};
use swat_workloads::tasks::Task;

fn main() {
    let seq_len = 64;
    let dim = 8;
    let train = 96;
    let test = 64;

    banner("Accuracy proxy — frozen attention + ridge readout (chance = 0.50)");
    println!("({seq_len} tokens, d={dim}, {train} train / {test} test problems per cell)");
    println!();

    let mechanisms = standard_mechanisms(seq_len);
    let mut rows = Vec::new();
    for &m in &mechanisms {
        let mut row = vec![m.name().to_string()];
        for task in Task::ALL {
            let r = evaluate(m, task, seq_len, dim, train, test, 42);
            row.push(format!("{:.2}", r.accuracy));
        }
        rows.push(row);
    }
    let mut headers = vec!["mechanism"];
    headers.extend(Task::ALL.iter().map(|t| t.name()));
    print_table(&headers, &rows);

    println!();
    println!("Reading (maps onto Table 3's columns):");
    let get = |m: Mechanism, t: Task| evaluate(m, t, seq_len, dim, train, test, 42).accuracy;
    let window = mechanisms[1];
    let bigbird = mechanisms[2];
    let fourier = mechanisms[4];
    println!(
        "  - local coherence (LRA Image regime): window {:.2} vs fourier {:.2} — the",
        get(window, Task::LocalCoherence),
        get(fourier, Task::LocalCoherence)
    );
    println!("    +15% Image gain of Longformer over full-FFT Butterfly, mechanised.");
    println!(
        "  - needle retrieval (long-range regime): dense {:.2} vs window {:.2}; BigBird's",
        get(mechanisms[0], Task::NeedleRetrieval),
        get(window, Task::NeedleRetrieval)
    );
    println!(
        "    random links recover part of it ({:.2}) — why BigBird beats Longformer on",
        get(bigbird, Task::NeedleRetrieval)
    );
    println!("    ListOps in Table 3.");
    println!("  - random control: all mechanisms near 0.50 (no leakage through the harness).");
}
