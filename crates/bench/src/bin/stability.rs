//! Extension study: SWAT's raw-exponential fused kernel vs the
//! FlashAttention-style online-max variant, in binary16.
//!
//! SWAT's kernel fusion (Equation 1) is cheaper because it never rescales
//! — it relies on layer-normed inputs keeping scores small. This study
//! maps out where that bet pays off and where it breaks.
//!
//! ```text
//! cargo run -p swat-bench --bin stability
//! ```

use swat_attention::fused::fused_window_attention_in;
use swat_attention::stable::stable_window_attention_in;
use swat_attention::{reference, SparsityPattern};
use swat_bench::{banner, print_table};
use swat_numeric::{SplitMix64, F16};
use swat_tensor::Matrix;

fn main() {
    let n = 128;
    let h = 16;
    let w = 16;
    banner("Binary16 accuracy: raw-exponential fusion (SWAT) vs online-max (FlashAttention-style)");
    println!(
        "({n} tokens, H={h}, window 2w={}, inputs scaled to sweep the score magnitude)",
        2 * w
    );
    println!();

    let mut rows = Vec::new();
    for &input_scale in &[0.1f32, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0] {
        let mut rng = SplitMix64::new(99);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0) * input_scale;
        let q = Matrix::from_fn(n, h, &mut gen);
        let k = Matrix::from_fn(n, h, &mut gen);
        let v = Matrix::from_fn(n, h, &mut gen);
        let scale = 1.0 / (h as f32).sqrt();

        let exact =
            reference::masked_attention(&q, &k, &v, &SparsityPattern::sliding_window(n, w), scale);
        let raw = fused_window_attention_in::<F16>(&q, &k, &v, w, scale);
        let stable = stable_window_attention_in::<F16>(&q, &k, &v, w, scale);

        let raw_finite = raw.output.as_slice().iter().all(|x| x.is_finite());
        let max_score = input_scale * input_scale * h as f32 * scale;
        rows.push(vec![
            format!("{input_scale:.2}"),
            format!("~{max_score:.1}"),
            if raw_finite {
                format!("{:.2e}", raw.output.max_abs_diff(&exact))
            } else {
                "OVERFLOW".to_string()
            },
            format!("{:.2e}", stable.output.max_abs_diff(&exact)),
            format!(
                "{:.2}",
                stable.counts.flops as f64 / raw.counts.flops as f64
            ),
            stable.rescales.to_string(),
        ]);
    }
    print_table(
        &[
            "input scale",
            "score mag",
            "raw-exp err",
            "online-max err",
            "FLOP ratio",
            "rescales",
        ],
        &rows,
    );

    println!();
    println!("Reading:");
    println!("  - for layer-norm-scaled inputs (score magnitude < ~8) the raw kernel matches");
    println!("    the stable one to binary16 rounding, at lower FLOPs and simpler hardware;");
    println!("  - past exp-overflow territory the raw kernel returns inf/NaN while the");
    println!("    online-max variant stays exact — the cost is ~1.2-1.5x kernel FLOPs, which");
    println!("    in SWAT's pipeline would mean a rescale multiplier per attention core and");
    println!("    a max-reduction tree alongside ROWSUM.");
}
