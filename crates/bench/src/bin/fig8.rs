//! Reproduces **Figure 8**: speedup of SWAT (Longformer/BigBird
//! configuration) over the Butterfly accelerator in BTF-1 and BTF-2
//! configurations, across input lengths 1024…16384.
//!
//! ```text
//! cargo run -p swat-bench --bin fig8
//! ```

use swat::{SwatAccelerator, SwatConfig};
use swat_baselines::butterfly::{swat_speedup, ButterflyAccelerator};
use swat_bench::{banner, fmt_ratio, print_table, SWEEP_LENGTHS};

fn main() {
    let swat = SwatAccelerator::new(SwatConfig::longformer_fp16()).expect("valid config");
    let btf1 = ButterflyAccelerator::btf(1);
    let btf2 = ButterflyAccelerator::btf(2);

    banner("Figure 8 — normalized speedup of SWAT over Butterfly");
    let mut rows = Vec::new();
    for &n in &SWEEP_LENGTHS {
        let t = swat.latency_seconds(n);
        rows.push(vec![
            n.to_string(),
            fmt_ratio(swat_speedup(&btf1, t, n)),
            fmt_ratio(swat_speedup(&btf2, t, n)),
            format!("{:.2}", btf1.optimal_attn_fraction(n)),
        ]);
    }
    print_table(
        &[
            "len",
            "SWAT vs BTF-1",
            "SWAT vs BTF-2",
            "BTF-1 attn-engine share",
        ],
        &rows,
    );

    println!();
    println!("Paper anchors:");
    println!(
        "  @4096:  BTF-1 {:.1}x (paper 6.7x), BTF-2 {:.1}x (paper 12.2x)",
        swat_speedup(&btf1, swat.latency_seconds(4096), 4096),
        swat_speedup(&btf2, swat.latency_seconds(4096), 4096),
    );
    println!(
        "  @16384: BTF-1 {:.1}x (paper abstract: 22x latency vs baseline FPGA)",
        swat_speedup(&btf1, swat.latency_seconds(16384), 16384),
    );
}
