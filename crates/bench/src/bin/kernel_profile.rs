//! Event-kernel self-profiling: runs one representative scenario per
//! serving regime with [`Simulation::run_profiled`] and emits
//! `BENCH_kernel.json` — events delivered by kind, dispatch and
//! preemption counts, peak event-heap and waiting-queue populations, and
//! measured wall-clock throughput (events/sec) per scenario.
//!
//! The deterministic counters (everything except `wall_s` /
//! `events_per_sec`) are bitwise identical for a fixed `seed`; the
//! wall-clock fields obviously vary with the host, so CI only
//! strict-JSON-validates this artifact instead of sha-comparing it.
//!
//! ```text
//! cargo run --release -p swat-bench --bin kernel_profile [seed] [requests] [headline]
//! ```
//!
//! `requests` (default 10 000) scales every scenario; CI smoke-tests the
//! binary at 500. The final **headline** cell reruns the homogeneous
//! baseline at `headline` requests (default 1 000 000) — the
//! million-request kernel measurement — so the artifact records both the
//! per-regime counters and the sustained events/sec the arena-backed
//! event loop reaches at scale. CI smokes the headline at 100 000. A
//! **decode-loop** cell exercises the token-level step kernel (multi-step
//! plans with early exit under continuous batching), so the
//! `step_complete` counter and the decode-regime heap/queue peaks are on
//! the record alongside the one-shot regimes.

use std::time::Instant;

use swat_bench::{banner, print_table};
use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::json::Json;
use swat_serve::policy::{LeastLoaded, ShardedLeastLoaded, ShardedShortestJobFirst};
use swat_serve::scale::AutoscalerConfig;
use swat_serve::sim::{AdmissionControl, PreemptionControl, Simulation, TrafficSpec};
use swat_serve::trace::TelemetryMode;
use swat_workloads::{DecodeMix, RequestMix};

/// Default requests per scenario.
const DEFAULT_REQUESTS: usize = 10_000;

/// Default requests for the headline cell: the million-request kernel.
const DEFAULT_HEADLINE: usize = 1_000_000;

/// Prints the usage line and exits with status 2 — unparseable arguments
/// should read as operator error, not a crash.
fn usage(problem: &str) -> ! {
    eprintln!("kernel_profile: {problem}");
    eprintln!("usage: kernel_profile [seed] [requests] [headline]");
    eprintln!("  seed      u64 traffic seed (default 0x5EED)");
    eprintln!("  requests  requests per scenario (default {DEFAULT_REQUESTS}, must be > 0)");
    eprintln!(
        "  headline  requests for the headline cell (default {DEFAULT_HEADLINE}, must be > 0)"
    );
    std::process::exit(2);
}

/// One profiled scenario: a prepared simulation, a policy, and traffic.
struct Scenario<'a> {
    name: &'static str,
    sim: Simulation<'a>,
    policy: Box<dyn swat_serve::DispatchPolicy>,
    spec: TrafficSpec,
    /// Requests for this scenario — `requests` for the per-regime cells,
    /// `headline` for the million-request cell.
    count: usize,
    /// Decode plans layered over the traffic — `None` keeps the
    /// scenario's requests one-shot.
    decode: Option<DecodeMix>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = match args.next() {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| usage(&format!("seed must be an unsigned integer, got {s:?}"))),
        None => 0x5EED,
    };
    let requests: usize =
        match args.next() {
            Some(s) => s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("requests must be a positive integer, got {s:?}"))
            }),
            None => DEFAULT_REQUESTS,
        };
    let headline: usize =
        match args.next() {
            Some(s) => s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                usage(&format!("headline must be a positive integer, got {s:?}"))
            }),
            None => DEFAULT_HEADLINE,
        };
    if let Some(extra) = args.next() {
        usage(&format!("unexpected argument {extra:?}"));
    }

    let spec = |arrivals: ArrivalProcess, mix: RequestMix| TrafficSpec {
        arrivals,
        mix,
        seed,
    };
    let label = |s: &TrafficSpec| format!("{}/{}", s.arrivals.name(), s.mix.name());

    // One scenario per serving regime, mirroring the serve_sweep cells so
    // the counters describe kernels the sweep actually exercises: a
    // steady-state baseline, admission shedding under overload,
    // checkpoint-and-requeue preemption (the tombstoning path), the
    // autoscaler's warm-up/park events, cost-model fan-out, and the
    // baseline again under streaming telemetry to price the sketches.
    let homogeneous = FleetConfig::standard(6);
    let preemption_fleet = FleetConfig::standard(2);
    let sharded_fleet = FleetConfig::standard(4);
    let poisson = spec(ArrivalProcess::poisson(14.0), RequestMix::Production);
    let overload = spec(ArrivalProcess::bursty(12.0), RequestMix::Production);
    let lulls = spec(ArrivalProcess::bursty(2.5), RequestMix::Production);
    let diurnal = spec(ArrivalProcess::diurnal(3.0, 22.0), RequestMix::Production);
    let light = spec(ArrivalProcess::poisson(6.0), RequestMix::Production);

    let scenarios = vec![
        Scenario {
            name: "homogeneous",
            sim: Simulation::new(&homogeneous).arrivals_label(label(&poisson)),
            policy: Box::new(LeastLoaded),
            spec: poisson,
            count: requests,
            decode: None,
        },
        Scenario {
            name: "priority-shed",
            sim: Simulation::new(&homogeneous)
                .arrivals_label(label(&overload))
                .admission(AdmissionControl::shed_background_at(32)),
            policy: Box::new(LeastLoaded),
            spec: overload,
            count: requests,
            decode: None,
        },
        Scenario {
            name: "preemption",
            sim: Simulation::new(&preemption_fleet)
                .arrivals_label(label(&lulls))
                .preemption(PreemptionControl::after_wait(0.1)),
            policy: Box::new(LeastLoaded),
            spec: lulls,
            count: requests,
            decode: None,
        },
        Scenario {
            name: "autoscale",
            sim: Simulation::new(&homogeneous)
                .arrivals_label(label(&diurnal))
                .autoscale(AutoscalerConfig::standard().with_min_cards(2)),
            policy: Box::new(LeastLoaded),
            spec: diurnal,
            count: requests,
            decode: None,
        },
        Scenario {
            name: "sharded-adaptive",
            sim: Simulation::new(&sharded_fleet).arrivals_label(label(&light)),
            policy: Box::new(ShardedLeastLoaded::new(4)),
            spec: light,
            count: requests,
            decode: None,
        },
        Scenario {
            name: "homogeneous-streaming",
            sim: Simulation::new(&homogeneous)
                .arrivals_label(label(&poisson))
                .telemetry(TelemetryMode::Streaming),
            policy: Box::new(LeastLoaded),
            spec: poisson,
            count: requests,
            decode: None,
        },
        // The decode regime: multi-step plans with early exit on the
        // sharded SJF policy, mirroring serve_sweep's scenario 10 mix.
        // Every step fans back in through `StepComplete`, so this is the
        // one cell whose `step_complete` counter is non-zero.
        Scenario {
            name: "decode-loop",
            sim: Simulation::new(&sharded_fleet).arrivals_label(label(&light)),
            policy: Box::new(ShardedShortestJobFirst::new(4)),
            spec: light,
            count: requests,
            decode: Some(DecodeMix {
                min_steps: 2,
                max_steps: 6,
                exit_prob: 0.2,
            }),
        },
        // The headline: the steady-state baseline at `headline` requests.
        // Same regime as "homogeneous", three orders of magnitude more
        // events — this is the row whose events/s trajectory
        // docs/serving.md tells readers to watch across PRs.
        Scenario {
            name: "headline",
            sim: Simulation::new(&homogeneous).arrivals_label(label(&poisson)),
            policy: Box::new(LeastLoaded),
            spec: poisson,
            count: headline,
            decode: None,
        },
    ];

    banner(format!(
        "kernel_profile — {requests} requests/scenario + {headline}-request headline, \
         {} scenarios (seed {seed:#x})",
        scenarios.len()
    ));

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for mut scenario in scenarios {
        let traffic = match &scenario.decode {
            Some(mix) => scenario.spec.decode_requests(scenario.count, mix),
            None => scenario.spec.requests(scenario.count),
        };
        let started = Instant::now();
        let (report, counters) = scenario.sim.run_profiled(&mut *scenario.policy, &traffic);
        let wall = started.elapsed().as_secs_f64();
        let rate = if wall > 0.0 {
            counters.events_total() as f64 / wall
        } else {
            0.0
        };
        rows.push(vec![
            scenario.name.to_string(),
            format!("{}", scenario.count),
            report.policy.clone(),
            scenario.sim.telemetry_mode().name().to_string(),
            format!("{}", counters.events_total()),
            format!("{}", counters.dispatches),
            format!("{}", counters.preemption_evictions),
            format!("{}", counters.peak_event_heap),
            format!("{}", counters.peak_queue_depth),
            format!("{:.1}", counters.sim_span_s),
            format!("{:.3}", wall),
            format!("{:.2e}", rate),
        ]);
        let mut row = vec![
            ("scenario".to_string(), Json::Str(scenario.name.into())),
            ("policy".to_string(), Json::Str(report.policy.clone())),
            (
                "telemetry".to_string(),
                Json::Str(scenario.sim.telemetry_mode().name().into()),
            ),
            ("requests".to_string(), Json::Int(scenario.count as i64)),
            ("completed".to_string(), Json::Int(report.completed as i64)),
            ("rejected".to_string(), Json::Int(report.rejected as i64)),
        ];
        match counters.to_json() {
            Json::Obj(pairs) => row.extend(pairs),
            other => row.push(("counters".to_string(), other)),
        }
        row.push(("wall_s".to_string(), Json::Num(wall)));
        row.push(("events_per_sec".to_string(), Json::Num(rate)));
        out.push(Json::Obj(row));
    }

    print_table(
        &[
            "scenario",
            "requests",
            "policy",
            "telemetry",
            "events",
            "dispatches",
            "evicted",
            "peak heap",
            "peak q",
            "sim s",
            "wall s",
            "events/s",
        ],
        &rows,
    );

    let doc = Json::obj([
        ("bench", Json::Str("kernel_profile".into())),
        ("seed", Json::UInt(seed)),
        ("requests_per_scenario", Json::Int(requests as i64)),
        ("scenarios", Json::Arr(out)),
    ]);

    let path = "BENCH_kernel.json";
    std::fs::write(path, doc.pretty()).expect("write BENCH_kernel.json");
    println!("\nwrote {path}");
}
