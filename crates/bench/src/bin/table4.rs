//! Reproduces **Table 4**: ImageNet-1K Top-1 accuracy of ViL (window
//! attention, SWAT-supported) vs Pixelfly (butterfly) — the paper's
//! published records, with the parameter-efficiency analysis the paper
//! draws from them.
//!
//! ```text
//! cargo run -p swat-bench --bin table4
//! ```

use swat_bench::{banner, print_table};
use swat_workloads::records::table4;

fn main() {
    banner("Table 4 (recorded) — ImageNet-1K Top-1: ViL (window) vs Pixelfly (butterfly)");
    let rows: Vec<Vec<String>> = table4()
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                format!("{:.1}M", r.params_millions),
                format!("{:.1}%", r.top1),
                if r.window_based {
                    "window (SWAT)"
                } else {
                    "butterfly"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(&["model", "params", "Top-1", "attention"], &rows);

    println!();
    println!("Analysis (the paper's reading):");
    let t = table4();
    let best_window = t
        .iter()
        .filter(|r| r.window_based)
        .max_by(|a, b| a.top1.partial_cmp(&b.top1).unwrap())
        .unwrap();
    let best_butterfly = t
        .iter()
        .filter(|r| !r.window_based)
        .max_by(|a, b| a.top1.partial_cmp(&b.top1).unwrap())
        .unwrap();
    println!(
        "  best window model: {} ({:.1}% @ {:.1}M params)",
        best_window.model, best_window.top1, best_window.params_millions
    );
    println!(
        "  best butterfly model: {} ({:.1}% @ {:.1}M params)",
        best_butterfly.model, best_butterfly.top1, best_butterfly.params_millions
    );
    // Accuracy per parameter at matched scale.
    let vil_tiny = &t[0];
    let pixelfly_ms = &t[1];
    println!(
        "  at matched ~6M params: {} {:.1}% vs {} {:.1}% (+{:.1} pts for window attention)",
        vil_tiny.model,
        vil_tiny.top1,
        pixelfly_ms.model,
        pixelfly_ms.top1,
        vil_tiny.top1 - pixelfly_ms.top1
    );
}
