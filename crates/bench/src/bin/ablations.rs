//! Ablation study of SWAT's dataflow decisions (DESIGN.md §6): kernel
//! fusion, the K/V FIFO, and the two-phase reduction, each removed in
//! isolation.
//!
//! ```text
//! cargo run -p swat-bench --bin ablations
//! ```

use swat::ablation::{sweep, Ablation};
use swat::SwatConfig;
use swat_bench::{banner, fmt_ms, print_table, SWEEP_LENGTHS};

fn main() {
    let cfg = SwatConfig::longformer_fp16();

    banner("Ablations — one head, FP16, 2w=512, HBM unless noted");
    for &n in &SWEEP_LENGTHS {
        println!("sequence length {n}:");
        let outcomes = sweep(&cfg, n);
        let base = outcomes[0].seconds;
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .map(|o| {
                vec![
                    o.ablation.name().to_string(),
                    fmt_ms(o.seconds),
                    fmt_ms(o.compute_seconds),
                    fmt_ms(o.memory_seconds),
                    format!("{:.1}", o.traffic_bytes as f64 / (1024.0 * 1024.0)),
                    o.initiation_interval.to_string(),
                    format!("{:.2}x", o.seconds / base),
                    if o.memory_bound() {
                        "memory"
                    } else {
                        "compute"
                    }
                    .to_string(),
                ]
            })
            .collect();
        print_table(
            &[
                "variant",
                "total ms",
                "compute ms",
                "memory ms",
                "MiB moved",
                "II",
                "slowdown",
                "bound",
            ],
            &rows,
        );
        println!();
    }

    println!("Reading:");
    let o = sweep(&cfg, 16384);
    let find = |a: Ablation| o.iter().find(|x| x.ablation == a).unwrap();
    println!(
        "  kernel fusion saves {:.0}x off-chip traffic",
        find(Ablation::NoFusion).traffic_bytes as f64 / find(Ablation::None).traffic_bytes as f64
    );
    println!(
        "  the K/V FIFO saves {:.0}x off-chip traffic (and is what makes DDR viable)",
        find(Ablation::NoFifo).traffic_bytes as f64 / find(Ablation::None).traffic_bytes as f64
    );
    println!(
        "  the two-phase reduction keeps the II at {} instead of {} cycles",
        find(Ablation::None).initiation_interval,
        find(Ablation::MonolithicReduction).initiation_interval
    );
}
