//! End-to-end check that `serve_sweep`'s scoped thread pool is
//! unobservable: the tables on stdout and the `BENCH_serve.json`
//! artifact must be byte-for-byte identical whatever `--jobs` says.
//! Each invocation runs in its own scratch directory because the binary
//! writes the artifact to the working directory.

use std::path::Path;
use std::process::Command;

/// Runs the sweep binary with `args` in `dir`, returning its stdout and
/// the bytes of the artifact it wrote.
fn run_sweep(dir: &Path, args: &[&str]) -> (Vec<u8>, Vec<u8>) {
    std::fs::create_dir_all(dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_serve_sweep"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("serve_sweep spawns");
    assert!(
        out.status.success(),
        "serve_sweep {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read(dir.join("BENCH_serve.json")).expect("artifact written");
    (out.stdout, json)
}

#[test]
fn parallel_sweep_is_byte_identical() {
    let base = std::env::temp_dir().join(format!("swat_sweep_jobs_{}", std::process::id()));
    let (seq_stdout, seq_json) = run_sweep(&base.join("jobs1"), &["--jobs", "1", "7", "40"]);
    let (par_stdout, par_json) = run_sweep(&base.join("jobs4"), &["--jobs", "4", "7", "40"]);
    assert!(seq_stdout == par_stdout, "stdout must not depend on --jobs");
    assert!(
        seq_json == par_json,
        "BENCH_serve.json must not depend on --jobs"
    );
    std::fs::remove_dir_all(&base).ok();
}
