//! Criterion micro-benchmarks of the attention kernels themselves (the
//! software substrate; the paper's figures come from the `fig*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swat_attention::{chunks, fused, window};
use swat_numeric::{SplitMix64, F16};
use swat_tensor::{ops, Matrix};
use swat_workloads::fourier::{fft, Complex};

fn qkv(n: usize, h: usize) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    let mut rng = SplitMix64::new(0xBE7C);
    let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
    (
        Matrix::from_fn(n, h, &mut gen),
        Matrix::from_fn(n, h, &mut gen),
        Matrix::from_fn(n, h, &mut gen),
    )
}

fn bench_attention_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_kernels");
    for &n in &[256usize, 1024] {
        let w = 32;
        let h = 64;
        let (q, k, v) = qkv(n, h);
        group.bench_with_input(BenchmarkId::new("window_exact", n), &n, |b, _| {
            b.iter(|| window::window_attention(&q, &k, &v, w, 0.125))
        });
        group.bench_with_input(BenchmarkId::new("sliding_chunks", n), &n, |b, _| {
            b.iter(|| chunks::sliding_chunks_attention(&q, &k, &v, w, 0.125))
        });
        group.bench_with_input(BenchmarkId::new("fused_f32", n), &n, |b, _| {
            b.iter(|| fused::fused_window_attention(&q, &k, &v, w, 0.125))
        });
        group.bench_with_input(BenchmarkId::new("fused_f16", n), &n, |b, _| {
            b.iter(|| fused::fused_window_attention_in::<F16>(&q, &k, &v, w, 0.125))
        });
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let n = 128;
    let a32 = Matrix::from_fn(n, n, |i, j| ((i * 31 + j) % 17) as f32 * 0.1);
    let b32 = Matrix::from_fn(n, n, |i, j| ((i * 13 + j) % 11) as f32 * 0.1);
    let a16 = a32.map(F16::from_f32);
    let b16 = b32.map(F16::from_f32);
    group.bench_function("f32_naive_128", |b| b.iter(|| ops::gemm(&a32, &b32)));
    group.bench_function("f32_blocked_128", |b| {
        b.iter(|| ops::gemm_blocked(&a32, &b32, 32))
    });
    group.bench_function("f16_naive_128", |b| b.iter(|| ops::gemm(&a16, &b16)));
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1024usize, 4096] {
        let mut rng = SplitMix64::new(1);
        let signal: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.next_gaussian(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut data = signal.clone();
                fft(&mut data);
                data
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention_kernels, bench_gemm, bench_fft);
criterion_main!(benches);
