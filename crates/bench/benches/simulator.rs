//! Criterion micro-benchmarks of the SWAT simulator itself: the cost
//! models are used inside sweeps, so their own speed matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swat::timing::StageTimings;
use swat::trace::simulate_schedule;
use swat::{SwatAccelerator, SwatConfig};
use swat_baselines::butterfly::ButterflyAccelerator;
use swat_baselines::{GpuCostModel, GpuKernel};

fn bench_cost_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_models");
    let swat = SwatAccelerator::new(SwatConfig::longformer_fp16()).expect("valid");
    let gpu = GpuCostModel::mi210();
    let btf = ButterflyAccelerator::btf(1);
    group.bench_function("swat_latency_sweep", |b| {
        b.iter(|| (9..15).map(|p| swat.latency_seconds(1 << p)).sum::<f64>())
    });
    group.bench_function("gpu_cost_sweep", |b| {
        b.iter(|| {
            (9..15)
                .map(|p| gpu.attention_seconds(GpuKernel::Dense, 1 << p, 64))
                .sum::<f64>()
        })
    });
    group.bench_function("butterfly_sweep", |b| {
        b.iter(|| {
            (9..15)
                .map(|p| btf.model_attention_seconds(1 << p))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_schedule_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    let pipeline = StageTimings::for_config(&SwatConfig::longformer_fp16()).to_pipeline(false);
    for &rows in &[1024usize, 16384] {
        group.bench_with_input(BenchmarkId::new("simulate", rows), &rows, |b, &rows| {
            b.iter(|| simulate_schedule(&pipeline, rows))
        });
    }
    group.finish();
}

fn bench_functional_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_run");
    group.sample_size(10);
    let cfg = SwatConfig {
        window_tokens: 64,
        ..SwatConfig::longformer_fp16()
    };
    let accel = SwatAccelerator::new(cfg).expect("valid");
    let x = swat_tensor::Matrix::from_fn(512, 64, |i, j| ((i * 7 + j) % 13) as f32 * 0.05);
    group.bench_function("fp16_512rows_w32", |b| {
        b.iter(|| accel.run(&x, &x, &x).expect("run succeeds"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cost_models,
    bench_schedule_simulation,
    bench_functional_run
);
criterion_main!(benches);
