//! Criterion micro-benchmarks of the serving kernel's two core
//! structures: the time-ordered [`EventQueue`] (a binary heap of
//! simulation events) and the rank-ordered [`PriorityQueue`] (the
//! waiting line, per-class lanes ordered by id). The million-request
//! kernel spends most of its cycles pushing and popping these, so their
//! scaling from 10³ to 10⁶ entries is worth watching on its own —
//! a regression here shows up multiplied by two events per request in
//! `BENCH_kernel.json`'s headline cell.
//!
//! Populations are drawn from the same seeded production-mix traffic the
//! sweeps use, so class mix and id distribution match what the kernel
//! sees in anger rather than a synthetic uniform fill.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use swat_serve::arrival::ArrivalProcess;
use swat_serve::event::{EventQueue, PriorityQueue};
use swat_serve::request::Request;
use swat_serve::sim::TrafficSpec;
use swat_workloads::RequestMix;

/// Entry counts: three decades up to the million-request regime.
const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Seeded production-mix traffic, shared by every population size.
fn traffic(n: usize) -> Vec<Request> {
    TrafficSpec {
        arrivals: ArrivalProcess::poisson(14.0),
        mix: RequestMix::Production,
        seed: 0x5EED,
    }
    .requests(n)
}

/// Push `n` completions (arrival times make a realistic non-sorted
/// insertion order), then drain the heap in time order.
fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for &n in &SIZES {
        let requests = traffic(n);
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, _| {
            b.iter(|| {
                let mut queue = EventQueue::new();
                for r in &requests {
                    queue.push_completion(r.arrival, (r.id % 6) as usize, r.id, 0, r.id as u32);
                }
                let mut last = 0.0;
                while let Some((time, event)) = queue.pop() {
                    last = time;
                    black_box(event);
                }
                last
            })
        });
    }
    group.finish();
}

/// The waiting queue under its three kernel workloads: filling the
/// class lanes, the policies' merged-rank scan, and keyed removal
/// (admission shed / preemption merge). Removal walks ids in reverse so
/// every hit lands at its lane's tail — the kernel's own removals are
/// likewise single-element, not head-of-lane drains.
fn bench_priority_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_queue");
    group.sample_size(10);
    for &n in &SIZES {
        let requests = traffic(n);
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, _| {
            b.iter(|| {
                let mut queue = PriorityQueue::new();
                for (i, r) in requests.iter().enumerate() {
                    queue.push(r, i as u32);
                }
                queue.len()
            })
        });
        let mut full = PriorityQueue::new();
        for (i, r) in requests.iter().enumerate() {
            full.push(r, i as u32);
        }
        group.bench_with_input(BenchmarkId::new("iterate", n), &n, |b, _| {
            b.iter(|| {
                full.view(&requests)
                    .iter()
                    .map(|r| r.shape.work_tokens())
                    .sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("insert_remove", n), &n, |b, _| {
            b.iter(|| {
                let mut queue = PriorityQueue::new();
                for (i, r) in requests.iter().enumerate() {
                    queue.push(r, i as u32);
                }
                for r in requests.iter().rev() {
                    black_box(queue.remove((r.class.rank(), r.id)));
                }
                queue.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_priority_queue);
criterion_main!(benches);
