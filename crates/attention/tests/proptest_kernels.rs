//! Cross-kernel equivalence properties: every optimised implementation must
//! agree with the masked-softmax reference on arbitrary inputs.

use proptest::prelude::*;
use swat_attention::{chunks, fused, pattern::SparsityPattern, reference, window};
use swat_numeric::{SplitMix64, F16};
use swat_tensor::Matrix;

fn qkv(n: usize, h: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    let mut rng = SplitMix64::new(seed);
    let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
    (
        Matrix::from_fn(n, h, &mut gen),
        Matrix::from_fn(n, h, &mut gen),
        Matrix::from_fn(n, h, &mut gen),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused streaming kernel (SWAT's algorithm) equals the masked
    /// reference for any window and sequence length.
    #[test]
    fn fused_equals_reference(
        n in 2usize..96,
        h in 1usize..16,
        w_raw in 1usize..32,
        seed in any::<u64>(),
    ) {
        let w = w_raw.min(n);
        let (q, k, v) = qkv(n, h, seed);
        let scale = 1.0 / (h as f32).sqrt();
        let run = fused::fused_window_attention(&q, &k, &v, w, scale);
        let p = SparsityPattern::sliding_window(n, w);
        let exact = reference::masked_attention(&q, &k, &v, &p, scale);
        prop_assert!(run.output.max_abs_diff(&exact) < 1e-4,
            "diff {}", run.output.max_abs_diff(&exact));
        // 100% transfer efficiency: each K/V row loaded exactly once.
        prop_assert_eq!(run.kv_loads, n as u64);
    }

    /// Sliding chunks equals exact window attention for any geometry.
    #[test]
    fn chunks_equal_window(
        n in 2usize..80,
        h in 1usize..12,
        w_raw in 1usize..24,
        seed in any::<u64>(),
    ) {
        let w = w_raw.min(n);
        let (q, k, v) = qkv(n, h, seed);
        let chunked = chunks::sliding_chunks_attention(&q, &k, &v, w, 0.3);
        let exact = window::window_attention(&q, &k, &v, w, 0.3);
        prop_assert!(chunked.output.max_abs_diff(&exact.output) < 1e-4);
        // Chunked always executes at least as many FLOPs as the exact band.
        prop_assert!(chunked.counts.flops >= exact.counts.flops);
    }

    /// The F16 fused kernel stays within a binary16-scale envelope of the
    /// f32 reference for attention-scale inputs.
    #[test]
    fn fused_f16_error_bounded(
        n in 4usize..48,
        w_raw in 1usize..16,
        seed in any::<u64>(),
    ) {
        let w = w_raw.min(n);
        let h = 8;
        let (q, k, v) = qkv(n, h, seed);
        let scale = 1.0 / (h as f32).sqrt();
        let run = fused::fused_window_attention_in::<F16>(&q, &k, &v, w, scale);
        let p = SparsityPattern::sliding_window(n, w);
        let exact = reference::masked_attention(&q, &k, &v, &p, scale);
        // Outputs are convex combinations of V (|V| <= 1), so absolute
        // error of a few dozen binary16 ULPs at magnitude 1 is the bound.
        prop_assert!(run.output.max_abs_diff(&exact) < 0.05,
            "diff {}", run.output.max_abs_diff(&exact));
    }

    /// BigBird pattern: fused kernel equals reference; row budget holds.
    #[test]
    fn fused_bigbird_equals_reference(
        n in 16usize..64,
        seed in any::<u64>(),
    ) {
        let (q, k, v) = qkv(n, 8, seed);
        let p = SparsityPattern::bigbird(n, 2, 2, 2, seed);
        let run = fused::fused_pattern_attention_in::<f32>(&q, &k, &v, &p, 0.354);
        let exact = reference::masked_attention(&q, &k, &v, &p, 0.354);
        prop_assert!(run.output.max_abs_diff(&exact) < 1e-4);
    }

    /// Pattern algebra: the BigBird pattern contains its window, global and
    /// random components.
    #[test]
    fn bigbird_contains_components(n in 16usize..96, seed in any::<u64>()) {
        let w = 3;
        let ng = 4.min(n / 4);
        let nr = 2;
        let p = SparsityPattern::bigbird(n, w, ng, nr, seed);
        let window = SparsityPattern::sliding_window(n, w);
        for i in 0..n {
            for j in 0..n {
                if window.attends(i, j) || j < ng || i < ng {
                    prop_assert!(p.attends(i, j), "bigbird must contain ({i},{j})");
                }
            }
            for &j in p.random_targets(i) {
                prop_assert!(p.attends(i, j));
            }
        }
    }

    /// Attention outputs are convex combinations of the attended V rows:
    /// each output coordinate lies within the min/max of V over the
    /// attended set.
    #[test]
    fn outputs_are_convex_combinations(
        n in 4usize..40,
        w_raw in 1usize..12,
        seed in any::<u64>(),
    ) {
        let w = w_raw.min(n);
        let (q, k, v) = qkv(n, 4, seed);
        let run = window::window_attention(&q, &k, &v, w, 1.0);
        for i in 0..n {
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(n);
            for c in 0..4 {
                let vmin = (lo..hi).map(|j| v.get(j, c)).fold(f32::INFINITY, f32::min);
                let vmax = (lo..hi).map(|j| v.get(j, c)).fold(f32::NEG_INFINITY, f32::max);
                let z = run.output.get(i, c);
                prop_assert!(z >= vmin - 1e-4 && z <= vmax + 1e-4,
                    "row {} col {}: {} outside [{}, {}]", i, c, z, vmin, vmax);
            }
        }
    }

    /// The online-max stable kernel equals the masked reference for any
    /// window, including inputs whose raw exponentials overflow.
    #[test]
    fn stable_equals_reference(
        n in 4usize..64,
        w_raw in 1usize..16,
        amp in 0.5f32..6.0,
        seed in any::<u64>(),
    ) {
        let w = w_raw.min(n);
        let mut rng = SplitMix64::new(seed);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0) * amp;
        let q = Matrix::from_fn(n, 8, &mut gen);
        let k = Matrix::from_fn(n, 8, &mut gen);
        let v = Matrix::from_fn(n, 8, &mut gen);
        let run = swat_attention::stable::stable_window_attention_in::<f32>(&q, &k, &v, w, 0.354);
        let p = SparsityPattern::sliding_window(n, w);
        let exact = reference::masked_attention(&q, &k, &v, &p, 0.354);
        prop_assert!(run.output.max_abs_diff(&exact) < 1e-3 * amp,
            "diff {}", run.output.max_abs_diff(&exact));
        prop_assert!(run.output.as_slice().iter().all(|x| x.is_finite()));
    }

    /// Causal windows never attend the future, and interior rows use the
    /// full 2w budget.
    #[test]
    fn causal_window_laws(n in 8usize..128, w in 1usize..16) {
        let p = SparsityPattern::causal_window(n, w);
        for i in 0..n {
            let t = p.row_targets(i);
            prop_assert!(t.iter().all(|&j| j <= i), "row {} attends the future", i);
            prop_assert!(t.contains(&i));
            if i + 1 >= 2 * w {
                prop_assert_eq!(t.len(), 2 * w);
            }
        }
    }

    /// Dilated windows keep the 2w budget and contain the plain window's
    /// reach scaled by the dilation.
    #[test]
    fn dilated_window_laws(n in 16usize..96, w in 1usize..8, d in 1usize..5) {
        let p = SparsityPattern::dilated_window(n, w, d);
        for i in 0..n {
            let t = p.row_targets(i);
            prop_assert!(t.len() <= 2 * w);
            for &j in &t {
                let delta = j as isize - i as isize;
                prop_assert_eq!(delta.rem_euclid(d as isize), 0,
                    "target {} of row {} off the dilation grid", j, i);
                prop_assert!(delta >= -((w * d) as isize) && delta < (w * d) as isize);
            }
        }
    }

    /// NaN inputs propagate to (at most) the affected rows' outputs and
    /// never panic the kernels.
    #[test]
    fn nan_injection_is_contained(
        n in 8usize..32,
        bad_row in 0usize..8,
        seed in any::<u64>(),
    ) {
        let (q, k, v) = qkv(n, 4, seed);
        let mut q = q;
        let bad = bad_row.min(n - 1);
        q.set(bad, 0, f32::NAN);
        let w = 2;
        let run = fused::fused_window_attention(&q, &k, &v, w, 1.0);
        // Rows whose Q is clean stay clean: the fault does not spread
        // across rows (each row's computation is independent).
        for i in 0..n {
            if i != bad {
                for c in 0..4 {
                    prop_assert!(run.output.get(i, c).is_finite(),
                        "row {} corrupted by NaN in row {}", i, bad);
                }
            }
        }
    }

    /// Permuting V columns permutes the output columns identically
    /// (attention is equivariant over the value feature axis).
    #[test]
    fn value_column_equivariance(n in 4usize..32, seed in any::<u64>()) {
        let (q, k, v) = qkv(n, 6, seed);
        let run = window::window_attention(&q, &k, &v, 3, 0.5);
        // Swap V columns 0 and 5.
        let vp = Matrix::from_fn(n, 6, |i, j| {
            let jj = match j { 0 => 5, 5 => 0, other => other };
            v.get(i, jj)
        });
        let runp = window::window_attention(&q, &k, &vp, 3, 0.5);
        for i in 0..n {
            prop_assert!((run.output.get(i, 0) - runp.output.get(i, 5)).abs() < 1e-6);
            prop_assert!((run.output.get(i, 5) - runp.output.get(i, 0)).abs() < 1e-6);
        }
    }
}
