//! Operation and traffic accounting shared by all attention kernels.
//!
//! Figure 1 of the paper breaks transformer cost into floating-point
//! operations (FLOPs) and memory operations (MOPs); Figures 2b and 3 hinge
//! on *redundant* FLOPs and off-chip traffic. Every kernel in this crate
//! reports an [`OpCounts`] so those quantities come from the actual
//! computation rather than a separate estimate.

/// Operation counts produced by running a kernel.
///
/// # Examples
///
/// ```
/// use swat_attention::OpCounts;
///
/// let mut c = OpCounts::default();
/// c.record_macs(100);
/// assert_eq!(c.flops, 200); // one MAC = multiply + add
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Total floating-point operations executed (multiplies, adds,
    /// exponentials, divisions each count as one).
    pub flops: u64,
    /// FLOPs that contribute to the final output. `flops - useful_flops`
    /// is the redundant work (the grey/dashed regions in Figure 2b).
    pub useful_flops: u64,
    /// Bytes read from off-chip memory.
    pub bytes_read: u64,
    /// Bytes written to off-chip memory.
    pub bytes_written: u64,
}

impl OpCounts {
    /// Creates a zeroed counter.
    pub fn new() -> OpCounts {
        OpCounts::default()
    }

    /// Records `n` multiply-accumulate operations (2 FLOPs each), all
    /// useful.
    pub fn record_macs(&mut self, n: u64) {
        self.flops += 2 * n;
        self.useful_flops += 2 * n;
    }

    /// Records `n` multiply-accumulates of which only `useful` contribute
    /// to the output.
    pub fn record_macs_partial(&mut self, n: u64, useful: u64) {
        debug_assert!(useful <= n);
        self.flops += 2 * n;
        self.useful_flops += 2 * useful;
    }

    /// Records `n` single-FLOP operations (exp, div, compare), all useful.
    pub fn record_unary(&mut self, n: u64) {
        self.flops += n;
        self.useful_flops += n;
    }

    /// Records an off-chip read of `bytes`.
    pub fn record_read(&mut self, bytes: u64) {
        self.bytes_read += bytes;
    }

    /// Records an off-chip write of `bytes`.
    pub fn record_write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
    }

    /// Total off-chip traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of executed FLOPs that were redundant, in `[0, 1]`.
    pub fn redundancy(&self) -> f64 {
        if self.flops == 0 {
            0.0
        } else {
            1.0 - self.useful_flops as f64 / self.flops as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.flops += other.flops;
        self.useful_flops += other.useful_flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

impl core::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        let mut out = self;
        out.merge(&rhs);
        out
    }
}

impl core::iter::Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::default(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_count_two_flops() {
        let mut c = OpCounts::new();
        c.record_macs(10);
        assert_eq!(c.flops, 20);
        assert_eq!(c.useful_flops, 20);
        assert_eq!(c.redundancy(), 0.0);
    }

    #[test]
    fn partial_macs_track_redundancy() {
        let mut c = OpCounts::new();
        c.record_macs_partial(100, 50);
        assert!((c.redundancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_accumulates() {
        let mut c = OpCounts::new();
        c.record_read(128);
        c.record_write(64);
        assert_eq!(c.total_bytes(), 192);
    }

    #[test]
    fn merge_and_add_agree() {
        let mut a = OpCounts::new();
        a.record_macs(5);
        a.record_read(10);
        let mut b = OpCounts::new();
        b.record_unary(3);
        b.record_write(7);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, a + b);
        let summed: OpCounts = [a, b].into_iter().sum();
        assert_eq!(summed, merged);
    }

    #[test]
    fn empty_counter_has_no_redundancy() {
        assert_eq!(OpCounts::new().redundancy(), 0.0);
    }
}
