//! Multi-head attention built on the single-head kernels.
//!
//! SWAT processes one head at a time (total attention time is proportional
//! to the per-head time × heads ÷ pipelines, Section 5.3); this module
//! provides the functional multi-head computation used by the transformer
//! layer substrate and the end-to-end examples.

use crate::counters::OpCounts;
use crate::pattern::SparsityPattern;
use crate::window;
use swat_tensor::{ops, Matrix};

/// Weights of one multi-head attention block (no biases, as in the paper's
/// cost model).
#[derive(Debug, Clone)]
pub struct MultiHeadWeights {
    /// Query projection, `d_model × d_model`.
    pub wq: Matrix<f32>,
    /// Key projection, `d_model × d_model`.
    pub wk: Matrix<f32>,
    /// Value projection, `d_model × d_model`.
    pub wv: Matrix<f32>,
    /// Output projection, `d_model × d_model`.
    pub wo: Matrix<f32>,
    /// Number of attention heads; must divide `d_model`.
    pub heads: usize,
}

impl MultiHeadWeights {
    /// Random small-magnitude weights for testing and examples.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d_model`.
    pub fn random(d_model: usize, heads: usize, seed: u64) -> MultiHeadWeights {
        assert!(
            heads > 0 && d_model.is_multiple_of(heads),
            "heads must divide d_model"
        );
        let mut rng = swat_numeric::SplitMix64::new(seed);
        let std = 1.0 / (d_model as f32).sqrt();
        let mut mk = |salt: u64| {
            let mut r = swat_numeric::SplitMix64::new(seed ^ salt ^ rng.next_u64());
            Matrix::from_fn(d_model, d_model, |_, _| r.next_gaussian() * std)
        };
        MultiHeadWeights {
            wq: mk(0x51),
            wk: mk(0x4B),
            wv: mk(0x56),
            wo: mk(0x4F),
            heads,
        }
    }

    /// Head dimensionality `H = d_model / heads`.
    pub fn head_dim(&self) -> usize {
        self.wq.cols() / self.heads
    }
}

/// Output of a multi-head attention run.
#[derive(Debug, Clone)]
pub struct MultiHeadRun {
    /// `seq_len × d_model` output.
    pub output: Matrix<f32>,
    /// Aggregated operation counts across projections and heads.
    pub counts: OpCounts,
}

/// Multi-head attention with a per-head sparsity pattern.
///
/// Projects `x` to Q/K/V, slices the projections into `heads` heads, runs
/// pattern attention per head with scale `1/√H`, concatenates and applies
/// the output projection.
///
/// # Panics
///
/// Panics if `x.cols()` differs from the weight dimension or the pattern
/// length differs from `x.rows()`.
pub fn multi_head_attention(
    x: &Matrix<f32>,
    weights: &MultiHeadWeights,
    pattern: &SparsityPattern,
) -> MultiHeadRun {
    let d_model = weights.wq.rows();
    assert_eq!(x.cols(), d_model, "input width must match weights");
    assert_eq!(pattern.seq_len(), x.rows(), "pattern length mismatch");
    let n = x.rows();
    let heads = weights.heads;
    let h = weights.head_dim();
    let scale = 1.0 / (h as f32).sqrt();

    let mut counts = OpCounts::new();
    let q = ops::gemm(x, &weights.wq);
    let k = ops::gemm(x, &weights.wk);
    let v = ops::gemm(x, &weights.wv);
    counts.record_macs(3 * (n * d_model * d_model) as u64);

    let slice_head =
        |m: &Matrix<f32>, head: usize| Matrix::from_fn(n, h, |i, j| m.get(i, head * h + j));

    let mut concat = Matrix::<f32>::zeros(n, d_model);
    for head in 0..heads {
        let qh = slice_head(&q, head);
        let kh = slice_head(&k, head);
        let vh = slice_head(&v, head);
        let run = window::pattern_attention(&qh, &kh, &vh, pattern, scale);
        counts.merge(&run.counts);
        for i in 0..n {
            for j in 0..h {
                concat.set(i, head * h + j, run.output.get(i, j));
            }
        }
    }

    let output = ops::gemm(&concat, &weights.wo);
    counts.record_macs((n * d_model * d_model) as u64);

    MultiHeadRun { output, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: usize, d: usize, seed: u64) -> Matrix<f32> {
        let mut rng = swat_numeric::SplitMix64::new(seed);
        Matrix::from_fn(n, d, |_, _| rng.next_f32_in(-0.5, 0.5))
    }

    #[test]
    fn shapes_and_determinism() {
        let x = input(24, 16, 40);
        let w = MultiHeadWeights::random(16, 4, 7);
        assert_eq!(w.head_dim(), 4);
        let p = SparsityPattern::sliding_window(24, 3);
        let a = multi_head_attention(&x, &w, &p);
        let b = multi_head_attention(&x, &w, &p);
        assert_eq!(a.output.shape(), (24, 16));
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn window_and_dense_agree_when_window_covers_everything() {
        let x = input(8, 8, 41);
        let w = MultiHeadWeights::random(8, 2, 8);
        let dense = multi_head_attention(&x, &w, &SparsityPattern::dense(8));
        let wide = multi_head_attention(&x, &w, &SparsityPattern::sliding_window(8, 8));
        assert!(dense.output.max_abs_diff(&wide.output) < 1e-4);
    }

    #[test]
    fn sparse_pattern_costs_fewer_flops() {
        let x = input(128, 16, 42);
        let w = MultiHeadWeights::random(16, 4, 9);
        let dense = multi_head_attention(&x, &w, &SparsityPattern::dense(128));
        let sparse = multi_head_attention(&x, &w, &SparsityPattern::sliding_window(128, 4));
        assert!(sparse.counts.flops < dense.counts.flops);
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn invalid_head_count_rejected() {
        let _ = MultiHeadWeights::random(10, 3, 0);
    }

    #[test]
    fn output_changes_with_pattern() {
        let x = input(32, 8, 43);
        let w = MultiHeadWeights::random(8, 2, 10);
        let a = multi_head_attention(&x, &w, &SparsityPattern::sliding_window(32, 2));
        let b = multi_head_attention(&x, &w, &SparsityPattern::dense(32));
        assert!(a.output.max_abs_diff(&b.output) > 1e-6);
    }
}
