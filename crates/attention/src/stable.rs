//! Numerically stable streaming attention with an online running maximum —
//! the FlashAttention-style rescaling variant, implemented as an
//! *extension* of SWAT's fused kernel.
//!
//! SWAT's deferred-denominator fusion (Equation 1) takes raw exponentials:
//! cheap in hardware, but `Σ exp(s)` overflows binary16 once scores exceed
//! ~11 or the window grows large. FlashAttention [Dao et al., 2022 — the
//! paper's reference 5] solves this with an online max: on seeing a new
//! score `s > m`, rescale the partial sums by `exp(m − s)`. This module
//! implements that variant in the same row-major FIFO dataflow, so the two
//! designs can be compared head-to-head:
//!
//! - **cost**: one extra compare + (occasional) rescale multiply per
//!   position — in SWAT's pipeline this would add a rescale multiplier to
//!   every attention core and a max-reduction tree (roughly duplicating
//!   ROWSUM), which the paper avoids by relying on layer-norm-scaled
//!   inputs;
//! - **benefit**: no overflow for any input, even in binary16.
//!
//! The `overflow_study` test and the `swat-bench` `stability` binary
//! quantify the trade-off.

use crate::counters::OpCounts;
use swat_tensor::{Matrix, Scalar};

/// Result of a stable streaming run.
#[derive(Debug, Clone)]
pub struct StableRun {
    /// Attention output (widened to `f32`).
    pub output: Matrix<f32>,
    /// Operation counts, including the extra rescaling work.
    pub counts: OpCounts,
    /// Number of rescale events (running-max updates after the first
    /// position of each row).
    pub rescales: u64,
}

/// Streaming sliding-window attention with online-max rescaling, in
/// precision `T`.
///
/// Functionally equals exact window attention for all inputs, including
/// those whose raw exponentials overflow `T`.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `w == 0`.
///
/// # Examples
///
/// ```
/// use swat_tensor::Matrix;
/// use swat_numeric::F16;
/// use swat_attention::stable::stable_window_attention_in;
///
/// // Scores around 40: raw binary16 exponentials overflow, the stable
/// // kernel does not.
/// let x = Matrix::from_fn(16, 4, |_, _| 3.2f32);
/// let run = stable_window_attention_in::<F16>(&x, &x, &x, 2, 1.0);
/// assert!(run.output.as_slice().iter().all(|v| v.is_finite()));
/// ```
pub fn stable_window_attention_in<T: Scalar>(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    w: usize,
    scale: f32,
) -> StableRun {
    assert!(w > 0, "window half-width must be positive");
    assert_eq!(q.cols(), k.cols(), "q and k must share the head dimension");
    assert_eq!(k.rows(), v.rows(), "k and v must have one row per position");
    assert_eq!(q.rows(), k.rows(), "self-attention shapes required");

    let n = q.rows();
    let h = q.cols();
    let hv = v.cols();
    let scale_t = T::from_f32(scale);
    let qt = q.map(T::from_f32);
    let kt = k.map(T::from_f32);
    let vt = v.map(T::from_f32);

    let mut counts = OpCounts::new();
    let mut rescales = 0u64;
    let mut out = Matrix::<f32>::zeros(n, hv);
    let elem = T::BYTES as u64;

    for i in 0..n {
        let lo = i.saturating_sub(w);
        let hi = (i + w).min(n);
        let qi = qt.row(i);

        // Online state: running max m, rescaled row sum l, rescaled z.
        let mut m: Option<T> = None;
        let mut l = T::ZERO;
        let mut z = vec![T::ZERO; hv];

        for j in lo..hi {
            let mut s = T::ZERO;
            for (a, b) in qi.iter().zip(kt.row(j)) {
                s = s.add(a.mul(*b));
            }
            counts.record_macs(h as u64);
            let s = s.mul(scale_t);

            let m_old = m;
            let m_new = match m_old {
                None => s,
                Some(prev) => prev.max(s),
            };
            counts.record_unary(1); // the compare

            // Rescale previous partials if the max moved.
            if let Some(prev) = m_old {
                if m_new.to_f32() > prev.to_f32() {
                    let factor = prev.sub(m_new).exp();
                    l = l.mul(factor);
                    for zi in z.iter_mut() {
                        *zi = zi.mul(factor);
                    }
                    counts.record_unary(1 + hv as u64);
                    rescales += 1;
                }
            }
            m = Some(m_new);

            let e = s.sub(m_new).exp();
            counts.record_unary(1);
            l = l.add(e);
            for (zi, vj) in z.iter_mut().zip(vt.row(j)) {
                *zi = zi.add(e.mul(*vj));
            }
            counts.record_macs(hv as u64);
        }

        let row = out.row_mut(i);
        if l.to_f32() > 0.0 {
            for (o, zi) in row.iter_mut().zip(&z) {
                *o = zi.div(l).to_f32();
            }
            counts.record_unary(hv as u64);
        }
        counts.record_write(hv as u64 * elem);
    }
    counts.record_read((3 * n * h) as u64 * elem);

    StableRun {
        output: out,
        counts,
        rescales,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::fused_window_attention_in;
    use crate::reference;
    use crate::SparsityPattern;
    use swat_numeric::{SplitMix64, F16};

    fn qkv(n: usize, h: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = SplitMix64::new(seed);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
        (
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
        )
    }

    #[test]
    fn stable_equals_reference_for_normal_inputs() {
        let (q, k, v) = qkv(64, 8, 300);
        let run = stable_window_attention_in::<f32>(&q, &k, &v, 8, 0.354);
        let p = SparsityPattern::sliding_window(64, 8);
        let expect = reference::masked_attention(&q, &k, &v, &p, 0.354);
        assert!(run.output.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn overflow_study_raw_fails_stable_survives() {
        // Scores ~ 16 * 3.2^2 = 164: exp overflows binary16 (max ~11.09)
        // and even binary32 would overflow around 88.
        let x = Matrix::from_fn(32, 16, |_, _| 3.2f32);
        let raw = fused_window_attention_in::<F16>(&x, &x, &x, 4, 1.0);
        let stable = stable_window_attention_in::<F16>(&x, &x, &x, 4, 1.0);
        assert!(
            raw.output.as_slice().iter().any(|v| !v.is_finite()),
            "raw exponentials must overflow on this input"
        );
        assert!(
            stable.output.as_slice().iter().all(|v| v.is_finite()),
            "online-max rescaling must survive"
        );
        // With identical rows, attention output = the value row itself.
        for val in stable.output.as_slice() {
            assert!((val - 3.2).abs() < 0.01);
        }
    }

    #[test]
    fn stable_and_raw_agree_on_wellscaled_inputs() {
        let (q, k, v) = qkv(48, 16, 301);
        let raw = fused_window_attention_in::<F16>(&q, &k, &v, 8, 0.25);
        let stable = stable_window_attention_in::<F16>(&q, &k, &v, 8, 0.25);
        let diff = raw.output.max_abs_diff(&stable.output);
        assert!(diff < 0.01, "diff {diff}");
    }

    #[test]
    fn rescales_are_bounded_by_positions() {
        let (q, k, v) = qkv(100, 8, 302);
        let run = stable_window_attention_in::<f32>(&q, &k, &v, 10, 1.0);
        // At most one rescale per attended position after the first.
        assert!(run.rescales <= 100 * 20);
        assert!(
            run.rescales > 0,
            "random scores must move the max sometimes"
        );
    }

    #[test]
    fn stable_costs_more_flops_than_raw() {
        let (q, k, v) = qkv(64, 8, 303);
        let raw = fused_window_attention_in::<f32>(&q, &k, &v, 8, 1.0);
        let stable = stable_window_attention_in::<f32>(&q, &k, &v, 8, 1.0);
        assert!(
            stable.counts.flops > raw.counts.flops,
            "the compare/rescale overhead is the price of stability"
        );
        // ... but within ~2x.
        assert!((stable.counts.flops as f64) < 2.0 * raw.counts.flops as f64);
    }
}
