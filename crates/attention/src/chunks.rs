//! The *sliding chunks* implementation of window attention — the GPU state
//! of the art the paper compares against (Figure 2b).
//!
//! Sliding chunks tiles the diagonal band into dense `2w × 2w` blocks with
//! stride `w`, so every block maps onto a dense GEMM that vector hardware
//! executes efficiently. The price is redundancy: consecutive blocks overlap
//! by `w` and the block corners fall outside the band, so the fraction of
//! wasted multiply-accumulates approaches ½ as the sequence grows (the
//! paper gives `1/2 − 1/(4·|chunks|)`).
//!
//! This module computes window attention through that exact blocking, and
//! reports both executed and useful FLOPs so the redundancy is *measured*,
//! not assumed.

use crate::counters::OpCounts;
use swat_tensor::{ops, Matrix};

/// Result of a sliding-chunks run.
#[derive(Debug, Clone)]
pub struct ChunksRun {
    /// Attention output (identical to exact window attention up to
    /// floating-point rounding).
    pub output: Matrix<f32>,
    /// Executed vs useful FLOPs and memory traffic.
    pub counts: OpCounts,
    /// Number of diagonal chunks processed.
    pub num_chunks: usize,
    /// Chunk edge length, `2w`.
    pub chunk_size: usize,
}

/// The paper's closed-form redundancy ratio `1/2 − 1/(4·|chunks|)`.
///
/// Approaches 50% rapidly as the number of chunks grows.
///
/// # Panics
///
/// Panics if `num_chunks == 0`.
///
/// # Examples
///
/// ```
/// use swat_attention::chunks::redundancy_ratio;
///
/// assert!((redundancy_ratio(1) - 0.25).abs() < 1e-12);
/// assert!(redundancy_ratio(1024) > 0.499);
/// ```
pub fn redundancy_ratio(num_chunks: usize) -> f64 {
    assert!(num_chunks > 0, "chunk count must be positive");
    0.5 - 1.0 / (4.0 * num_chunks as f64)
}

/// Window attention computed via sliding chunks.
///
/// Row `i` attends `[i−w, i+w−1]` (the crate-level window convention); the
/// band is covered by chunks `t` spanning rows/columns
/// `[t·w, t·w + 2w) ∩ [0, n)`. Within each chunk the full dense score block
/// is computed (that is the point of the technique — and the source of the
/// redundancy); band entries are owned by the first chunk containing them
/// so nothing is double-counted.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `w == 0`.
#[allow(clippy::needless_range_loop)] // per-row band gathering indexes `band` by row
pub fn sliding_chunks_attention(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    w: usize,
    scale: f32,
) -> ChunksRun {
    assert!(w > 0, "window half-width must be positive");
    assert_eq!(q.cols(), k.cols(), "q and k must share the head dimension");
    assert_eq!(k.rows(), v.rows(), "k and v must have one row per position");
    assert_eq!(q.rows(), k.rows(), "self-attention shapes required");

    let n = q.rows();
    let h = q.cols();
    let hv = v.cols();
    let mut counts = OpCounts::new();
    let elem = 4u64;

    // Band storage: for each row, the (column, score) pairs produced by the
    // owning chunk. Capacity 2w per row.
    let mut band: Vec<Vec<(usize, f32)>> = vec![Vec::with_capacity(2 * w); n];

    let num_chunks = n.div_ceil(w);
    for t in 0..num_chunks {
        let lo = t * w;
        let hi = (t * w + 2 * w).min(n);
        let rows = hi - lo;

        // Dense score block: the full rows×rows product is executed on the
        // GPU regardless of how much of it lies in the band.
        let mut useful = 0u64;
        for i in lo..hi {
            for j in lo..hi {
                let in_band = {
                    let wlo = i.saturating_sub(w);
                    let whi = (i + w).min(n);
                    (wlo..whi).contains(&j)
                };
                let owned = in_band && i.min(j) / w == t;
                if owned {
                    let s = ops::dot_f32_acc(q.row(i), k.row(j)) * scale;
                    band[i].push((j, s));
                    useful += 1;
                }
            }
        }
        let computed_pairs = (rows * rows) as u64;
        counts.record_macs_partial(computed_pairs * h as u64, useful * h as u64);

        // SV side executes the same dense block shape against V.
        counts.record_macs_partial(computed_pairs * hv as u64, useful * hv as u64);

        // Traffic: each chunk reads its 2w rows of Q, K and V, and writes /
        // re-reads the materialised block scores (the chunked implementation
        // keeps the masked band in memory between the three kernels).
        counts.record_read((3 * rows * h) as u64 * elem);
        counts.record_write(computed_pairs * elem);
        counts.record_read(computed_pairs * elem);
    }

    // Softmax + weighted sum over the gathered band (the masked-softmax
    // kernel of the chunked implementation).
    let mut out = Matrix::<f32>::zeros(n, hv);
    for i in 0..n {
        band[i].sort_unstable_by_key(|&(j, _)| j);
        let mut scores: Vec<f32> = band[i].iter().map(|&(_, s)| s).collect();
        counts.record_unary(3 * scores.len() as u64);
        swat_numeric::softmax::softmax_stable_in_place(&mut scores);
        let row = out.row_mut(i);
        for (p, &(j, _)) in scores.iter().zip(&band[i]) {
            for (o, &vj) in row.iter_mut().zip(v.row(j)) {
                *o += p * vj;
            }
        }
    }
    counts.record_write((n * hv) as u64 * elem);

    ChunksRun {
        output: out,
        counts,
        num_chunks,
        chunk_size: 2 * w,
    }
}

/// Peak memory (bytes) the chunked implementation holds for score blocks:
/// `num_chunks · (2w)² · elem_bytes` materialised band storage — linear in
/// the sequence length, unlike the dense `n²` score matrix. This is the
/// quantity plotted in the right panel of Figure 3.
pub fn chunks_score_memory_bytes(n: usize, w: usize, elem_bytes: usize) -> u64 {
    let num_chunks = n.div_ceil(w) as u64;
    num_chunks * (2 * w as u64) * (2 * w as u64) * elem_bytes as u64
}

/// Peak score memory of the dense implementation: `n² · elem_bytes`.
pub fn dense_score_memory_bytes(n: usize, elem_bytes: usize) -> u64 {
    n as u64 * n as u64 * elem_bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::window_attention;
    use swat_numeric::SplitMix64;

    fn random_qkv(n: usize, h: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = SplitMix64::new(seed);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
        (
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
        )
    }

    #[test]
    fn matches_exact_window_attention() {
        for (n, w) in [(32, 4), (64, 8), (100, 7), (48, 16)] {
            let (q, k, v) = random_qkv(n, 8, n as u64);
            let chunked = sliding_chunks_attention(&q, &k, &v, w, 0.354);
            let exact = window_attention(&q, &k, &v, w, 0.354);
            assert!(
                chunked.output.max_abs_diff(&exact.output) < 1e-4,
                "n={n} w={w}: chunked diverges from exact"
            );
        }
    }

    #[test]
    fn redundancy_approaches_half() {
        let (q, k, v) = random_qkv(1024, 4, 30);
        let run = sliding_chunks_attention(&q, &k, &v, 16, 1.0);
        let r = run.counts.redundancy();
        assert!(r > 0.40 && r < 0.55, "measured redundancy {r}");
    }

    #[test]
    fn redundancy_grows_with_chunk_count() {
        let (q1, k1, v1) = random_qkv(128, 4, 31);
        let (q2, k2, v2) = random_qkv(1024, 4, 31);
        let r1 = sliding_chunks_attention(&q1, &k1, &v1, 32, 1.0)
            .counts
            .redundancy();
        let r2 = sliding_chunks_attention(&q2, &k2, &v2, 32, 1.0)
            .counts
            .redundancy();
        assert!(r2 > r1, "more chunks, more redundancy: {r1} -> {r2}");
    }

    #[test]
    fn paper_formula_behaviour() {
        assert!((redundancy_ratio(1) - 0.25).abs() < 1e-12);
        assert!((redundancy_ratio(2) - 0.375).abs() < 1e-12);
        let mut prev = 0.0;
        for c in 1..100 {
            let r = redundancy_ratio(c);
            assert!(r > prev && r < 0.5);
            prev = r;
        }
    }

    #[test]
    fn executed_flops_roughly_double_useful() {
        let (q, k, v) = random_qkv(2048, 8, 32);
        let chunked = sliding_chunks_attention(&q, &k, &v, 32, 1.0);
        let exact = window_attention(&q, &k, &v, 32, 1.0);
        let ratio = chunked.counts.flops as f64 / exact.counts.flops as f64;
        assert!(
            (1.7..2.3).contains(&ratio),
            "chunked executes ~2x the useful FLOPs, got {ratio}"
        );
    }

    #[test]
    fn score_memory_linear_vs_dense_quadratic() {
        let m1 = chunks_score_memory_bytes(4096, 256, 4);
        let m2 = chunks_score_memory_bytes(8192, 256, 4);
        assert!((m2 as f64 / m1 as f64 - 2.0).abs() < 0.1);
        let d1 = dense_score_memory_bytes(4096, 4);
        let d2 = dense_score_memory_bytes(8192, 4);
        assert_eq!(d2 / d1, 4);
        assert!(m1 < d1);
    }

    #[test]
    fn chunk_count_is_ceil_n_over_w() {
        let (q, k, v) = random_qkv(100, 4, 33);
        let run = sliding_chunks_attention(&q, &k, &v, 16, 1.0);
        assert_eq!(run.num_chunks, 7); // ceil(100/16)
        assert_eq!(run.chunk_size, 32);
    }

    #[test]
    fn small_sequence_single_chunk() {
        let (q, k, v) = random_qkv(8, 4, 34);
        let run = sliding_chunks_attention(&q, &k, &v, 8, 1.0);
        // n <= w: a single chunk covers everything; window w=8 over n=8 is
        // nearly dense, redundancy small.
        assert_eq!(run.num_chunks, 1);
        let exact = window_attention(&q, &k, &v, 8, 1.0);
        assert!(run.output.max_abs_diff(&exact.output) < 1e-5);
    }
}
