//! Direct sliding-window attention.
//!
//! The mathematically exact computation SWAT accelerates: each row attends
//! only its window (see the crate-level window convention), computed here in
//! `f32` with stable softmax and with operation counting. This is the
//! "useful work" yardstick: it performs no redundant FLOPs, unlike the
//! sliding-chunks implementation.

use crate::counters::OpCounts;
use crate::pattern::SparsityPattern;
use crate::reference;
use swat_tensor::{ops, Matrix};

/// Result of a window-attention run: the output and its operation counts.
#[derive(Debug, Clone)]
pub struct WindowRun {
    /// Attention output, one row per query position.
    pub output: Matrix<f32>,
    /// FLOPs and traffic actually incurred.
    pub counts: OpCounts,
}

/// Exact sliding-window attention with half-width `w`.
///
/// Row `i` attends positions `[i−w, i+w−1]` clamped to the sequence. Equals
/// [`reference::masked_attention`] with a window pattern, but runs in
/// O(n·w·h) without materialising the mask.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `w == 0`.
///
/// # Examples
///
/// ```
/// use swat_tensor::Matrix;
/// use swat_attention::window::window_attention;
///
/// let x = Matrix::from_fn(16, 4, |i, j| ((i + j) % 3) as f32 * 0.2);
/// let run = window_attention(&x, &x, &x, 2, 1.0);
/// assert_eq!(run.output.shape(), (16, 4));
/// // FLOPs are linear in n: no n^2 term.
/// assert!(run.counts.flops < 16 * 4 * 4 * 2 * 4 + 16 * 4 * 16);
/// ```
pub fn window_attention(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    w: usize,
    scale: f32,
) -> WindowRun {
    assert!(w > 0, "window half-width must be positive");
    assert_eq!(q.cols(), k.cols(), "q and k must share the head dimension");
    assert_eq!(k.rows(), v.rows(), "k and v must have one row per position");
    assert_eq!(q.rows(), k.rows(), "window attention is self-attention");

    let n = q.rows();
    let h = q.cols();
    let mut out = Matrix::zeros(n, v.cols());
    let mut counts = OpCounts::new();

    for i in 0..n {
        let lo = i.saturating_sub(w);
        let hi = (i + w).min(n); // exclusive
        let span = hi - lo;
        let mut scores: Vec<f32> = (lo..hi)
            .map(|j| ops::dot_f32_acc(q.row(i), k.row(j)) * scale)
            .collect();
        counts.record_macs((span * h) as u64);
        swat_numeric::softmax::softmax_stable_in_place(&mut scores);
        counts.record_unary(3 * span as u64);
        let row = out.row_mut(i);
        for (p, j) in scores.iter().zip(lo..hi) {
            for (o, &vj) in row.iter_mut().zip(v.row(j)) {
                *o += p * vj;
            }
        }
        counts.record_macs((span * v.cols()) as u64);
    }
    // Ideal traffic: every input element read once, output written once.
    let elem = 4u64;
    counts.record_read((3 * n * h) as u64 * elem);
    counts.record_write((n * v.cols()) as u64 * elem);

    WindowRun {
        output: out,
        counts,
    }
}

/// Exact attention for an arbitrary [`SparsityPattern`], with counting.
/// Generalises [`window_attention`] to BigBird-style patterns.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the pattern.
pub fn pattern_attention(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    pattern: &SparsityPattern,
    scale: f32,
) -> WindowRun {
    let output = reference::masked_attention(q, k, v, pattern, scale);
    let n = q.rows();
    let h = q.cols();
    let nnz = pattern.nnz() as u64;
    let mut counts = OpCounts::new();
    counts.record_macs(nnz * h as u64); // QK on attended pairs
    counts.record_unary(3 * nnz); // softmax
    counts.record_macs(nnz * v.cols() as u64); // SV
    let elem = 4u64;
    counts.record_read((3 * n * h) as u64 * elem);
    counts.record_write((n * v.cols()) as u64 * elem);
    WindowRun { output, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_numeric::SplitMix64;

    fn random_qkv(n: usize, h: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = SplitMix64::new(seed);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
        (
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
        )
    }

    #[test]
    fn equals_masked_reference() {
        let (q, k, v) = random_qkv(48, 8, 10);
        for w in [1, 3, 8, 100] {
            let direct = window_attention(&q, &k, &v, w, 0.354);
            let p = SparsityPattern::sliding_window(48, w);
            let masked = reference::masked_attention(&q, &k, &v, &p, 0.354);
            assert!(
                direct.output.max_abs_diff(&masked) < 1e-5,
                "w={w} diverges from the masked reference"
            );
        }
    }

    #[test]
    fn huge_window_equals_dense() {
        let (q, k, v) = random_qkv(16, 4, 11);
        let run = window_attention(&q, &k, &v, 16, 1.0);
        let dense = reference::dense_attention(&q, &k, &v, 1.0);
        assert!(run.output.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn flops_scale_linearly_in_n() {
        let (q1, k1, v1) = random_qkv(256, 8, 12);
        let (q2, k2, v2) = random_qkv(512, 8, 12);
        let c1 = window_attention(&q1, &k1, &v1, 16, 1.0).counts;
        let c2 = window_attention(&q2, &k2, &v2, 16, 1.0).counts;
        let ratio = c2.flops as f64 / c1.flops as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn no_redundant_work() {
        let (q, k, v) = random_qkv(64, 8, 13);
        let run = window_attention(&q, &k, &v, 8, 1.0);
        assert_eq!(run.counts.redundancy(), 0.0);
    }

    #[test]
    fn pattern_attention_counts_bigbird() {
        let (q, k, v) = random_qkv(64, 8, 14);
        let p = SparsityPattern::bigbird(64, 4, 4, 4, 9);
        let run = pattern_attention(&q, &k, &v, &p, 1.0);
        let masked = reference::masked_attention(&q, &k, &v, &p, 1.0);
        assert!(run.output.max_abs_diff(&masked) < 1e-6);
        assert!(run.counts.flops > 0);
    }

    #[test]
    fn boundary_rows_attend_fewer() {
        let (q, k, v) = random_qkv(8, 2, 15);
        // w=4 over n=8: row 0 attends [0,4), row 7 attends [3,8).
        let run = window_attention(&q, &k, &v, 4, 1.0);
        let p = SparsityPattern::sliding_window(8, 4);
        assert_eq!(p.row_targets(0), vec![0, 1, 2, 3]);
        let masked = reference::masked_attention(&q, &k, &v, &p, 1.0);
        assert!(run.output.max_abs_diff(&masked) < 1e-6);
    }
}
