//! Golden-reference attention kernels.
//!
//! These are the straightforward three-step implementations (S = Q·Kᵀ,
//! S' = softmax(S), Z = S'·V) in `f32` with numerically stable softmax.
//! Every optimised kernel in this crate and every hardware simulation in
//! the `swat` crate is validated against them.

use crate::counters::OpCounts;
use crate::pattern::SparsityPattern;
use swat_tensor::{ops, Matrix};

/// Dense softmax attention: `Z = softmax(scale · Q·Kᵀ) · V`.
///
/// # Panics
///
/// Panics if the shapes are inconsistent (`q`, `k`, `v` must have the same
/// number of columns, and `k`, `v` the same number of rows).
///
/// # Examples
///
/// ```
/// use swat_tensor::Matrix;
/// use swat_attention::reference::dense_attention;
///
/// let q = Matrix::from_fn(4, 2, |i, _| i as f32 * 0.1);
/// let z = dense_attention(&q, &q, &q, 1.0);
/// assert_eq!(z.shape(), (4, 2));
/// ```
pub fn dense_attention(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    scale: f32,
) -> Matrix<f32> {
    check_shapes(q, k, v);
    let s = ops::gemm_bt(q, k).scale(scale);
    let p = ops::softmax_rows_stable(&s);
    ops::gemm(&p, v)
}

/// Dense attention with operation counting (used by the cost analyses).
pub fn dense_attention_counted(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    scale: f32,
) -> (Matrix<f32>, OpCounts) {
    check_shapes(q, k, v);
    let (n, h) = q.shape();
    let m = k.rows();
    let mut counts = OpCounts::new();
    // QK^T: n*m dot products of length h.
    counts.record_macs(n as u64 * m as u64 * h as u64);
    // Softmax: exp + add per score, div per score.
    counts.record_unary(3 * n as u64 * m as u64);
    // S'V: n*h dot products of length m.
    counts.record_macs(n as u64 * h as u64 * m as u64);
    // Traffic: read Q,K,V; write Z; plus the S/S' round trip that the
    // *unfused* three-step implementation spills to memory.
    let elem = 4u64; // f32
    counts.record_read((n * h + 2 * m * h) as u64 * elem);
    counts.record_write((n * h) as u64 * elem);
    counts.record_write(n as u64 * m as u64 * elem); // spill S
    counts.record_read(n as u64 * m as u64 * elem); // reload S for softmax/SV
    (dense_attention(q, k, v, scale), counts)
}

/// Pattern-masked softmax attention: scores outside the pattern are `-inf`
/// before the (stable) softmax, so masked positions receive zero
/// probability.
///
/// This is the mathematical definition of sparse attention that both the
/// sliding-chunks implementation and the SWAT hardware must reproduce.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `pattern.seq_len()` differs from
/// the number of rows of `q`.
pub fn masked_attention(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    pattern: &SparsityPattern,
    scale: f32,
) -> Matrix<f32> {
    check_shapes(q, k, v);
    assert_eq!(
        pattern.seq_len(),
        q.rows(),
        "pattern length must match sequence length"
    );
    assert_eq!(
        q.rows(),
        k.rows(),
        "masked attention requires self-attention shapes"
    );
    let n = q.rows();
    let h = q.cols();
    let mut out = Matrix::zeros(n, h);
    for i in 0..n {
        let targets = pattern.row_targets(i);
        if targets.is_empty() {
            continue;
        }
        let mut scores: Vec<f32> = targets
            .iter()
            .map(|&j| ops::dot_f32_acc(q.row(i), k.row(j)) * scale)
            .collect();
        swat_numeric::softmax::softmax_stable_in_place(&mut scores);
        let row = out.row_mut(i);
        for (p, &j) in scores.iter().zip(&targets) {
            for (o, &vj) in row.iter_mut().zip(v.row(j)) {
                *o += p * vj;
            }
        }
    }
    out
}

fn check_shapes(q: &Matrix<f32>, k: &Matrix<f32>, v: &Matrix<f32>) {
    assert_eq!(q.cols(), k.cols(), "q and k must share the head dimension");
    assert_eq!(k.rows(), v.rows(), "k and v must have one row per position");
    assert!(v.cols() > 0 && q.cols() > 0, "empty head dimension");
}

#[cfg(test)]
mod tests {
    use super::*;
    use swat_numeric::SplitMix64;

    fn random_qkv(n: usize, h: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = SplitMix64::new(seed);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
        let q = Matrix::from_fn(n, h, &mut gen);
        let k = Matrix::from_fn(n, h, &mut gen);
        let v = Matrix::from_fn(n, h, &mut gen);
        (q, k, v)
    }

    #[test]
    fn uniform_scores_average_values() {
        // With identical K rows, attention output is the mean of V rows.
        let n = 8;
        let h = 4;
        let q = Matrix::from_fn(n, h, |_, _| 0.3);
        let k = Matrix::from_fn(n, h, |_, _| 0.5);
        let v = Matrix::from_fn(n, h, |i, _| i as f32);
        let z = dense_attention(&q, &k, &v, 1.0);
        let mean = (0..n).sum::<usize>() as f32 / n as f32;
        for i in 0..n {
            for j in 0..h {
                assert!((z.get(i, j) - mean).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        let (q, k, v) = random_qkv(16, 8, 1);
        let z = dense_attention(&q, &k, &v, 0.35);
        let vmin = v.as_slice().iter().copied().fold(f32::INFINITY, f32::min);
        let vmax = v
            .as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        for x in z.as_slice() {
            assert!(*x >= vmin - 1e-5 && *x <= vmax + 1e-5);
        }
    }

    #[test]
    fn masked_with_dense_pattern_equals_dense() {
        let (q, k, v) = random_qkv(12, 6, 2);
        let p = SparsityPattern::dense(12);
        let a = dense_attention(&q, &k, &v, 0.408);
        let b = masked_attention(&q, &k, &v, &p, 0.408);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn masked_window_ignores_distant_values() {
        let (q, k, _) = random_qkv(32, 4, 3);
        // Put a huge value far outside every window; it must not leak.
        let mut v = Matrix::from_fn(32, 4, |_, _| 0.1);
        for j in 0..4 {
            v.set(31, j, 1e6);
        }
        let p = SparsityPattern::sliding_window(32, 2);
        let z = masked_attention(&q, &k, &v, &p, 1.0);
        for i in 0..28 {
            for j in 0..4 {
                assert!(z.get(i, j).abs() < 1.0, "row {i} leaked the distant value");
            }
        }
    }

    #[test]
    fn scale_changes_sharpness() {
        let (q, k, v) = random_qkv(8, 4, 4);
        let soft = dense_attention(&q, &k, &v, 0.01);
        let sharp = dense_attention(&q, &k, &v, 10.0);
        // At near-zero scale every output row approaches the V mean; at
        // high scale rows diverge toward individual V rows.
        let mean_row: Vec<f32> = (0..4)
            .map(|j| (0..8).map(|i| v.get(i, j)).sum::<f32>() / 8.0)
            .collect();
        let soft_err: f32 = (0..8)
            .map(|i| {
                soft.row(i)
                    .iter()
                    .zip(&mean_row)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f32::max)
            })
            .fold(0.0, f32::max);
        let sharp_err: f32 = (0..8)
            .map(|i| {
                sharp
                    .row(i)
                    .iter()
                    .zip(&mean_row)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f32::max)
            })
            .fold(0.0, f32::max);
        assert!(soft_err < sharp_err);
    }

    #[test]
    fn counted_flops_are_quadratic() {
        let (q1, k1, v1) = random_qkv(64, 8, 5);
        let (q2, k2, v2) = random_qkv(128, 8, 5);
        let (_, c1) = dense_attention_counted(&q1, &k1, &v1, 1.0);
        let (_, c2) = dense_attention_counted(&q2, &k2, &v2, 1.0);
        let ratio = c2.flops as f64 / c1.flops as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "head dimension")]
    fn mismatched_heads_panic() {
        let q = Matrix::<f32>::zeros(4, 3);
        let k = Matrix::<f32>::zeros(4, 2);
        let v = Matrix::<f32>::zeros(4, 2);
        let _ = dense_attention(&q, &k, &v, 1.0);
    }
}
