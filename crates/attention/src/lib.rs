//! Attention patterns and kernels for the SWAT reproduction.
//!
//! This crate implements every attention algorithm the paper discusses:
//!
//! - [`reference`](mod@reference): dense softmax attention and pattern-masked attention,
//!   the golden references everything else is validated against;
//! - [`pattern`]: static sparsity patterns — sliding window, global tokens,
//!   static random tokens (BigBird), their composition, and a butterfly
//!   pattern for the baseline comparison;
//! - [`window`]: direct sliding-window attention (the mathematical object
//!   SWAT accelerates);
//! - [`chunks`]: the *sliding chunks* implementation (Hugging Face
//!   Longformer, the GPU state of the art in the paper) including its
//!   redundant-computation accounting (Figure 2b);
//! - [`fused`]: the fused, row-major, FIFO-buffered streaming kernel of
//!   Equation 1 — the exact algorithm SWAT's hardware executes, generic
//!   over precision so it runs in binary16 like the FPGA datapath;
//! - [`multihead`]: multi-head attention built on the kernels above;
//! - [`counters`]: FLOP and memory-traffic accounting shared by all
//!   kernels.
//!
//! # Window convention
//!
//! The paper instantiates `2w` attention cores and a `2w`-deep K/V FIFO for
//! a window "width" of `2w = 512`. We therefore define the attention window
//! of row `i` as the `2w` positions `{j : i−w ≤ j ≤ i+w−1}` (clamped to the
//! sequence), which includes `i` itself. Boundary rows attend fewer
//! positions. Every kernel in this crate uses this convention, so they are
//! mutually comparable; the ±1 asymmetry relative to Figure 4a of the paper
//! is immaterial to all results.
//!
//! # Examples
//!
//! ```
//! use swat_attention::{fused, reference, pattern::SparsityPattern};
//! use swat_tensor::Matrix;
//!
//! let n = 32;
//! let h = 8;
//! let q = Matrix::from_fn(n, h, |i, j| ((i + j) % 5) as f32 * 0.1);
//! let k = q.clone();
//! let v = Matrix::from_fn(n, h, |i, j| ((i * j) % 3) as f32 * 0.2);
//!
//! let exact = reference::masked_attention(&q, &k, &v, &SparsityPattern::sliding_window(n, 4), 1.0);
//! let streamed = fused::fused_window_attention(&q, &k, &v, 4, 1.0);
//! assert!(exact.max_abs_diff(&streamed.output) < 1e-4);
//! ```

pub mod chunks;
pub mod counters;
pub mod fused;
pub mod multihead;
pub mod pattern;
pub mod reference;
pub mod stable;
pub mod window;

pub use counters::OpCounts;
pub use pattern::SparsityPattern;
