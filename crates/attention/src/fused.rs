//! The fused, row-major, FIFO-buffered streaming attention kernel —
//! the algorithm SWAT's hardware executes (Sections 3.1–3.3 of the paper).
//!
//! Three ideas compose here:
//!
//! 1. **Kernel fusion** (Equation 1): softmax's denominator is deferred to
//!    a final division, so QK, exp and SV stream row-by-row with no
//!    intermediate `S`/`S'` matrices spilled to memory.
//! 2. **Row-major dataflow**: rows of `Q` are processed in order, so the
//!    windows of consecutive rows overlap in all but one position.
//! 3. **Input-stationary K/V FIFO**: a fixed-size buffer holds the `2w`
//!    K/V rows of the current window; each row is loaded from off-chip
//!    memory *exactly once* (100% transfer efficiency), replaced at slot
//!    `j mod 2w` exactly like the hardware's BRAM selection signal.
//!
//! The kernel is generic over [`Scalar`], so running it with
//! [`swat_numeric::F16`] reproduces the FPGA's binary16 datapath
//! rounding-for-rounding.

use crate::counters::OpCounts;
use crate::pattern::SparsityPattern;
use swat_tensor::{Matrix, Scalar};

/// One FIFO slot: `(position, k_row, v_row)`; `None` until first fill.
type KvSlot<T> = Option<(usize, Vec<T>, Vec<T>)>;

/// Fixed-capacity K/V buffer with modulo-indexed replacement.
///
/// Slot `j mod capacity` holds position `j` while `j` is in the window;
/// writing position `j + capacity` overwrites it — which is exactly FIFO
/// order for a sliding window (Figure 4b of the paper).
#[derive(Debug, Clone)]
pub struct KvFifo<T> {
    capacity: usize,
    slots: Vec<KvSlot<T>>,
    loads: u64,
    evictions: u64,
}

impl<T: Scalar> KvFifo<T> {
    /// Creates an empty FIFO with `capacity` slots (the paper's `2w`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> KvFifo<T> {
        assert!(capacity > 0, "FIFO capacity must be positive");
        KvFifo {
            capacity,
            slots: vec![None; capacity],
            loads: 0,
            evictions: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of K/V rows loaded so far.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of rows that have been overwritten.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Loads position `j` into slot `j mod capacity`, evicting whatever was
    /// there. Returns the evicted position, if any.
    pub fn load(&mut self, j: usize, k_row: &[T], v_row: &[T]) -> Option<usize> {
        let slot = j % self.capacity;
        self.loads += 1;
        let evicted = self.slots[slot].take().map(|(pos, _, _)| pos);
        if evicted.is_some() {
            self.evictions += 1;
        }
        self.slots[slot] = Some((j, k_row.to_vec(), v_row.to_vec()));
        evicted
    }

    /// Returns the K and V rows for position `j` if resident.
    pub fn get(&self, j: usize) -> Option<(&[T], &[T])> {
        match &self.slots[j % self.capacity] {
            Some((pos, k, v)) if *pos == j => Some((k.as_slice(), v.as_slice())),
            _ => None,
        }
    }

    /// Returns `true` if position `j` is resident.
    pub fn contains(&self, j: usize) -> bool {
        self.get(j).is_some()
    }

    /// Current number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// Result of a fused streaming attention run.
#[derive(Debug, Clone)]
pub struct FusedRun {
    /// Attention output (widened to `f32` regardless of compute precision).
    pub output: Matrix<f32>,
    /// FLOPs and off-chip traffic.
    pub counts: OpCounts,
    /// K/V rows fetched from off-chip memory. For pure window attention
    /// this equals the sequence length: each row is loaded exactly once.
    pub kv_loads: u64,
    /// K/V rows re-fetched for random-attention cores (BigBird), which
    /// reload per query row.
    pub kv_reloads: u64,
    /// Peak FIFO occupancy observed.
    pub peak_occupancy: usize,
}

/// Fused streaming sliding-window attention in precision `T`.
///
/// Functionally equivalent to exact window attention; the computation order
/// and rounding mirror the hardware: per-operation rounding in `T`, raw
/// (non-max-subtracted) exponentials, deferred division.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `w == 0`.
///
/// # Examples
///
/// ```
/// use swat_tensor::Matrix;
/// use swat_numeric::F16;
/// use swat_attention::fused::fused_window_attention_in;
///
/// let x = Matrix::from_fn(32, 8, |i, j| ((i * 7 + j) % 5) as f32 * 0.1 - 0.2);
/// let run = fused_window_attention_in::<F16>(&x, &x, &x, 4, 0.353);
/// assert_eq!(run.kv_loads, 32); // each K/V row loaded exactly once
/// ```
pub fn fused_window_attention_in<T: Scalar>(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    w: usize,
    scale: f32,
) -> FusedRun {
    let pattern = SparsityPattern::sliding_window(q.rows(), w);
    fused_pattern_attention_in::<T>(q, k, v, &pattern, scale)
}

/// Convenience wrapper: [`fused_window_attention_in`] in `f32`.
pub fn fused_window_attention(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    w: usize,
    scale: f32,
) -> FusedRun {
    fused_window_attention_in::<f32>(q, k, v, w, scale)
}

/// Fused streaming attention for a full [`SparsityPattern`] in precision
/// `T`, modelling SWAT's parameterised design (Figure 7):
///
/// - **window** targets stream through the K/V FIFO (loaded once each);
/// - **global** targets live in dedicated cores pre-loaded before the run;
/// - **random** targets are re-loaded for every query row (the paper's
///   LOAD stage grows from 66 to 195 cycles for these cores).
///
/// Global *rows* (which attend every position) fall back to a dense
/// streaming pass for that row, as Longformer handles them outside the
/// windowed kernel.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the pattern.
pub fn fused_pattern_attention_in<T: Scalar>(
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    pattern: &SparsityPattern,
    scale: f32,
) -> FusedRun {
    assert_eq!(q.cols(), k.cols(), "q and k must share the head dimension");
    assert_eq!(k.rows(), v.rows(), "k and v must have one row per position");
    assert_eq!(q.rows(), k.rows(), "self-attention shapes required");
    assert_eq!(
        pattern.seq_len(),
        q.rows(),
        "pattern/sequence length mismatch"
    );

    let n = q.rows();
    let h = q.cols();
    let hv = v.cols();
    let scale_t = T::from_f32(scale);

    // Quantise inputs once, as the LOAD stage does when filling BRAMs.
    let qt = q.map(T::from_f32);
    let kt = k.map(T::from_f32);
    let vt = v.map(T::from_f32);

    let mut counts = OpCounts::new();
    let mut out = Matrix::<f32>::zeros(n, hv);
    let elem = T::BYTES as u64;

    // Window FIFO sized 2w (or a single slot when no window component).
    let fifo_cap = pattern.window_half_width().map_or(1, |w| 2 * w);
    let mut fifo = KvFifo::<T>::new(fifo_cap);
    let mut peak_occupancy = 0usize;
    let mut kv_reloads = 0u64;

    // Global cores: pre-loaded K/V rows, fixed for the whole run.
    let globals = pattern.globals().to_vec();
    counts.record_read(globals.len() as u64 * 2 * h as u64 * elem);

    for i in 0..n {
        // --- LOAD stage ---------------------------------------------------
        if let Some(w) = pattern.window_half_width() {
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(n);
            for j in lo..hi {
                if !fifo.contains(j) {
                    fifo.load(j, kt.row(j), vt.row(j));
                    counts.record_read(2 * h as u64 * elem);
                }
            }
            peak_occupancy = peak_occupancy.max(fifo.occupancy());
        }
        counts.record_read(h as u64 * elem); // the Q row itself

        // --- fused QK -> exp -> SV with deferred division ------------------
        let is_global_row = globals.binary_search(&i).is_ok();
        let qi = qt.row(i);
        let mut z = vec![T::ZERO; hv];
        let mut row_sum = T::ZERO;

        let attend =
            |j: usize, kj: &[T], vj: &[T], counts: &mut OpCounts, z: &mut [T], row_sum: &mut T| {
                debug_assert_eq!(kj.len(), h);
                // QK stage: dot product with per-op rounding in T.
                let mut s = T::ZERO;
                for (a, b) in qi.iter().zip(kj) {
                    s = s.add(a.mul(*b));
                }
                counts.record_macs(h as u64);
                let s = s.mul(scale_t);
                // SV stage: exponential and multiply with the co-resident V row.
                let e = s.exp();
                counts.record_unary(1);
                for (zi, vi) in z.iter_mut().zip(vj) {
                    *zi = zi.add(e.mul(*vi));
                }
                counts.record_macs(hv as u64);
                // ROWSUM.
                *row_sum = row_sum.add(e);
                counts.record_unary(1);
                let _ = j;
            };

        if is_global_row || pattern.is_dense() {
            // Dense pass for this row (global rows attend everything).
            for j in 0..n {
                attend(j, kt.row(j), vt.row(j), &mut counts, &mut z, &mut row_sum);
            }
            if is_global_row {
                // These K/V rows stream from memory again for this row.
                kv_reloads += n as u64;
                counts.record_read(2 * (n * h) as u64 * elem);
            }
        } else {
            for j in pattern.row_targets(i) {
                if let Some((kj, vj)) = fifo.get(j) {
                    // Window core: K/V resident in the FIFO.
                    let (kj, vj) = (kj.to_vec(), vj.to_vec());
                    attend(j, &kj, &vj, &mut counts, &mut z, &mut row_sum);
                } else if globals.binary_search(&j).is_ok() {
                    // Global core: pre-loaded, no traffic.
                    attend(j, kt.row(j), vt.row(j), &mut counts, &mut z, &mut row_sum);
                } else {
                    // Random core: reload K/V for this row.
                    kv_reloads += 1;
                    counts.record_read(2 * h as u64 * elem);
                    attend(j, kt.row(j), vt.row(j), &mut counts, &mut z, &mut row_sum);
                }
            }
        }

        // --- DIV & OUT stage ----------------------------------------------
        let out_row = out.row_mut(i);
        if row_sum.to_f32() > 0.0 {
            for (o, zi) in out_row.iter_mut().zip(&z) {
                *o = zi.div(row_sum).to_f32();
            }
            counts.record_unary(hv as u64);
        }
        counts.record_write(hv as u64 * elem);
    }

    FusedRun {
        output: out,
        counts,
        kv_loads: fifo.loads(),
        kv_reloads,
        peak_occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use swat_numeric::{SplitMix64, F16};

    fn random_qkv(n: usize, h: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = SplitMix64::new(seed);
        let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
        (
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
            Matrix::from_fn(n, h, &mut gen),
        )
    }

    #[test]
    fn fifo_modulo_replacement_is_fifo_order() {
        let mut fifo = KvFifo::<f32>::new(4);
        for j in 0..4 {
            assert_eq!(fifo.load(j, &[j as f32], &[0.0]), None);
        }
        assert_eq!(fifo.occupancy(), 4);
        // Loading 4 evicts 0, loading 5 evicts 1, ... strict FIFO.
        assert_eq!(fifo.load(4, &[4.0], &[0.0]), Some(0));
        assert_eq!(fifo.load(5, &[5.0], &[0.0]), Some(1));
        assert!(fifo.contains(4) && fifo.contains(5));
        assert!(!fifo.contains(0) && !fifo.contains(1));
        assert_eq!(fifo.evictions(), 2);
        assert_eq!(fifo.loads(), 6);
    }

    #[test]
    fn fifo_get_checks_position_tag() {
        let mut fifo = KvFifo::<f32>::new(2);
        fifo.load(0, &[1.0], &[2.0]);
        // Position 2 maps to the same slot but is not resident.
        assert!(fifo.get(2).is_none());
        assert_eq!(fifo.get(0).unwrap().0, &[1.0]);
    }

    #[test]
    fn fused_equals_masked_reference_f32() {
        let (q, k, v) = random_qkv(64, 8, 20);
        for w in [1, 4, 16] {
            let run = fused_window_attention(&q, &k, &v, w, 0.354);
            let p = SparsityPattern::sliding_window(64, w);
            let reference = reference::masked_attention(&q, &k, &v, &p, 0.354);
            assert!(
                run.output.max_abs_diff(&reference) < 1e-4,
                "w={w}: fused kernel diverges"
            );
        }
    }

    #[test]
    fn fused_f16_close_to_reference() {
        let (q, k, v) = random_qkv(48, 16, 21);
        let run = fused_window_attention_in::<F16>(&q, &k, &v, 8, 0.25);
        let p = SparsityPattern::sliding_window(48, 8);
        let reference = reference::masked_attention(&q, &k, &v, &p, 0.25);
        // binary16 accumulation over 16 window positions: a few ULPs of
        // headroom around 2^-10 relative precision.
        assert!(
            run.output.max_abs_diff(&reference) < 0.02,
            "diff {}",
            run.output.max_abs_diff(&reference)
        );
    }

    #[test]
    fn each_kv_row_loaded_exactly_once() {
        let (q, k, v) = random_qkv(128, 8, 22);
        let run = fused_window_attention(&q, &k, &v, 8, 1.0);
        assert_eq!(run.kv_loads, 128, "100% off-chip transfer efficiency");
        assert_eq!(run.kv_reloads, 0);
    }

    #[test]
    fn peak_occupancy_is_window_size() {
        let (q, k, v) = random_qkv(100, 4, 23);
        let run = fused_window_attention(&q, &k, &v, 8, 1.0);
        assert_eq!(run.peak_occupancy, 16, "FIFO fills to 2w");
    }

    #[test]
    fn traffic_is_linear_in_n() {
        let (q1, k1, v1) = random_qkv(128, 8, 24);
        let (q2, k2, v2) = random_qkv(256, 8, 24);
        let c1 = fused_window_attention(&q1, &k1, &v1, 8, 1.0).counts;
        let c2 = fused_window_attention(&q2, &k2, &v2, 8, 1.0).counts;
        let ratio = c2.total_bytes() as f64 / c1.total_bytes() as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn fused_bigbird_equals_masked_reference() {
        let (q, k, v) = random_qkv(96, 8, 25);
        let p = SparsityPattern::bigbird(96, 4, 6, 4, 77);
        let run = fused_pattern_attention_in::<f32>(&q, &k, &v, &p, 0.354);
        let reference = reference::masked_attention(&q, &k, &v, &p, 0.354);
        assert!(
            run.output.max_abs_diff(&reference) < 1e-4,
            "diff {}",
            run.output.max_abs_diff(&reference)
        );
        // Random cores caused reloads; window rows still loaded once each.
        assert!(run.kv_reloads > 0);
        assert_eq!(run.kv_loads, 96);
    }

    #[test]
    fn fused_no_reloads_for_pure_window() {
        let (q, k, v) = random_qkv(64, 4, 26);
        let p = SparsityPattern::sliding_window(64, 4);
        let run = fused_pattern_attention_in::<f32>(&q, &k, &v, &p, 1.0);
        assert_eq!(run.kv_reloads, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_fifo_rejected() {
        let _ = KvFifo::<f32>::new(0);
    }
}
