//! Static attention sparsity patterns.
//!
//! SWAT supports the attention patterns of Longformer (sliding window +
//! global tokens) and BigBird (window + global + static random), set as
//! design-time parameters (Figure 7 of the paper). The Butterfly baseline
//! uses a butterfly connectivity pattern. [`SparsityPattern`] represents all
//! of them uniformly as a per-row set of attended columns.

use swat_numeric::SplitMix64;
use swat_tensor::Matrix;

/// A static attention sparsity pattern over a sequence of length `seq_len`.
///
/// The pattern is the union of up to four components:
/// - a **sliding window** of half-width `w` (row `i` attends
///   `[i−w, i+w−1]`, clamped — see the crate-level window convention);
/// - **global tokens**: designated positions attended by every row, which
///   themselves attend to every position (symmetric, as in Longformer);
/// - **static random tokens**: per-row fixed random positions (BigBird);
/// - a **dense** flag that short-circuits everything to full attention.
///
/// # Examples
///
/// ```
/// use swat_attention::SparsityPattern;
///
/// let p = SparsityPattern::sliding_window(16, 2);
/// assert!(p.attends(8, 7));   // inside the window
/// assert!(!p.attends(8, 12)); // outside
/// assert_eq!(p.row_targets(0), vec![0, 1]); // clamped at the boundary
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    seq_len: usize,
    window: Option<usize>,
    globals: Vec<usize>,
    random: Vec<Vec<usize>>,
    dense: bool,
}

impl SparsityPattern {
    /// Full (dense) attention: every row attends every column.
    pub fn dense(seq_len: usize) -> SparsityPattern {
        SparsityPattern {
            seq_len,
            window: None,
            globals: Vec::new(),
            random: Vec::new(),
            dense: true,
        }
    }

    /// Pure sliding-window attention with half-width `w` (the Longformer
    /// pattern without global tokens). The window of row `i` is the up-to-
    /// `2w` positions `[i−w, i+w−1]` clamped to the sequence.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn sliding_window(seq_len: usize, w: usize) -> SparsityPattern {
        assert!(w > 0, "window half-width must be positive");
        SparsityPattern {
            seq_len,
            window: Some(w),
            globals: Vec::new(),
            random: Vec::new(),
            dense: false,
        }
    }

    /// Longformer pattern: sliding window plus symmetric global tokens at
    /// the given positions.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or any global index is out of range.
    pub fn longformer(seq_len: usize, w: usize, globals: &[usize]) -> SparsityPattern {
        assert!(w > 0, "window half-width must be positive");
        assert!(
            globals.iter().all(|&g| g < seq_len),
            "global token index out of range"
        );
        let mut globals = globals.to_vec();
        globals.sort_unstable();
        globals.dedup();
        SparsityPattern {
            seq_len,
            window: Some(w),
            globals,
            random: Vec::new(),
            dense: false,
        }
    }

    /// BigBird pattern: sliding window of half-width `w`, `n_global` global
    /// tokens (the first positions, as in BigBird's ITC configuration), and
    /// `n_random` statically random attended positions per row drawn with
    /// the given `seed`.
    ///
    /// The random positions are fixed at construction ("design-time
    /// parameters" in the paper) and exclude positions already covered by
    /// the window or globals where possible.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `n_global + n_random > seq_len`.
    pub fn bigbird(
        seq_len: usize,
        w: usize,
        n_global: usize,
        n_random: usize,
        seed: u64,
    ) -> SparsityPattern {
        assert!(w > 0, "window half-width must be positive");
        assert!(
            n_global + n_random <= seq_len,
            "global + random tokens exceed sequence length"
        );
        let globals: Vec<usize> = (0..n_global).collect();
        let mut rng = SplitMix64::new(seed);
        let mut random = Vec::with_capacity(seq_len);
        for i in 0..seq_len {
            let mut picks = Vec::with_capacity(n_random);
            let mut guard = 0usize;
            while picks.len() < n_random && guard < 64 * n_random.max(1) {
                guard += 1;
                let j = rng.next_below(seq_len as u64) as usize;
                let in_window = window_contains(i, j, w, seq_len);
                if !in_window && j >= n_global && !picks.contains(&j) {
                    picks.push(j);
                }
            }
            // Fall back to *any* distinct positions if the sequence is so
            // short that non-overlapping picks do not exist.
            let mut next = 0usize;
            while picks.len() < n_random {
                if !picks.contains(&next) {
                    picks.push(next);
                }
                next += 1;
            }
            picks.sort_unstable();
            random.push(picks);
        }
        SparsityPattern {
            seq_len,
            window: Some(w),
            globals,
            random,
            dense: false,
        }
    }

    /// A causal sliding window: row `i` attends `{max(0, i−2w+1) … i}` —
    /// the autoregressive-decoding variant (each token sees only the past,
    /// up to the same `2w` hardware budget). Mistral-style models use
    /// exactly this pattern; SWAT's core array supports it with the same
    /// FIFO, just without the look-ahead half.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn causal_window(seq_len: usize, w: usize) -> SparsityPattern {
        assert!(w > 0, "window half-width must be positive");
        let span = 2 * w;
        let targets: Vec<Vec<usize>> = (0..seq_len)
            .map(|i| {
                let lo = (i + 1).saturating_sub(span);
                (lo..=i).collect()
            })
            .collect();
        SparsityPattern::from_row_targets(targets)
    }

    /// A dilated sliding window (the Longformer variant): row `i` attends
    /// the `2w` positions `{ i + d·t : t ∈ [−w, w) }` clamped to the
    /// sequence, where `d` is the dilation. `dilation == 1` gives the
    /// plain sliding window. Dilation widens the receptive field at the
    /// same hardware budget of `2w` attention cores — one of the paper's
    /// "various attention mechanisms" arguments for FPGA programmability.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `dilation == 0`.
    pub fn dilated_window(seq_len: usize, w: usize, dilation: usize) -> SparsityPattern {
        assert!(w > 0, "window half-width must be positive");
        assert!(dilation > 0, "dilation must be positive");
        if dilation == 1 {
            return SparsityPattern::sliding_window(seq_len, w);
        }
        let targets: Vec<Vec<usize>> = (0..seq_len)
            .map(|i| {
                (-(w as isize)..w as isize)
                    .filter_map(|t| {
                        let j = i as isize + t * dilation as isize;
                        if (0..seq_len as isize).contains(&j) {
                            Some(j as usize)
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        SparsityPattern::from_row_targets(targets)
    }

    /// An arbitrary static pattern given explicitly as per-row target
    /// lists. Used for patterns outside the window/global/random family,
    /// e.g. the butterfly connectivity of the baseline accelerator.
    ///
    /// # Panics
    ///
    /// Panics if any target index is out of range.
    pub fn from_row_targets(targets: Vec<Vec<usize>>) -> SparsityPattern {
        let seq_len = targets.len();
        let mut random = targets;
        for (i, row) in random.iter_mut().enumerate() {
            assert!(
                row.iter().all(|&j| j < seq_len),
                "row {i} has a target out of range"
            );
            row.sort_unstable();
            row.dedup();
        }
        SparsityPattern {
            seq_len,
            window: None,
            globals: Vec::new(),
            random,
            dense: false,
        }
    }

    /// Sequence length this pattern is defined over.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The window half-width, if a window component is present.
    pub fn window_half_width(&self) -> Option<usize> {
        self.window
    }

    /// The global token positions (sorted).
    pub fn globals(&self) -> &[usize] {
        &self.globals
    }

    /// The static random positions of row `i` (empty if no random
    /// component).
    pub fn random_targets(&self, i: usize) -> &[usize] {
        self.random.get(i).map_or(&[], Vec::as_slice)
    }

    /// Returns `true` if this is the dense pattern.
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Whether row `i` attends column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn attends(&self, i: usize, j: usize) -> bool {
        assert!(i < self.seq_len && j < self.seq_len, "index out of range");
        if self.dense {
            return true;
        }
        if let Some(w) = self.window {
            if window_contains(i, j, w, self.seq_len) {
                return true;
            }
        }
        // Symmetric globals: global rows attend everything; every row
        // attends global columns.
        if self.globals.binary_search(&i).is_ok() || self.globals.binary_search(&j).is_ok() {
            return true;
        }
        self.random
            .get(i)
            .is_some_and(|r| r.binary_search(&j).is_ok())
    }

    /// The sorted set of columns attended by row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_targets(&self, i: usize) -> Vec<usize> {
        assert!(i < self.seq_len, "row out of range");
        if self.dense || self.globals.binary_search(&i).is_ok() {
            return (0..self.seq_len).collect();
        }
        let mut targets = Vec::new();
        if let Some(w) = self.window {
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(self.seq_len); // exclusive; window is [i-w, i+w-1]
            targets.extend(lo..hi);
        }
        for &g in &self.globals {
            targets.push(g);
        }
        if let Some(r) = self.random.get(i) {
            targets.extend_from_slice(r);
        }
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    /// Number of attended `(i, j)` pairs in the whole pattern.
    pub fn nnz(&self) -> usize {
        (0..self.seq_len).map(|i| self.row_targets(i).len()).sum()
    }

    /// Fraction of the dense `n²` score matrix that this pattern computes.
    pub fn density(&self) -> f64 {
        if self.seq_len == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.seq_len as f64 * self.seq_len as f64)
    }

    /// Materialises the pattern as an additive mask: `0` where attended,
    /// `-inf` where masked. Suitable for the reference kernels.
    pub fn to_additive_mask(&self) -> Matrix<f32> {
        Matrix::from_fn(self.seq_len, self.seq_len, |i, j| {
            if self.attends(i, j) {
                0.0
            } else {
                f32::NEG_INFINITY
            }
        })
    }
}

/// Whether `j` lies in the window of `i`: `i−w ≤ j ≤ i+w−1`, clamped.
fn window_contains(i: usize, j: usize, w: usize, seq_len: usize) -> bool {
    debug_assert!(j < seq_len);
    let lo = i.saturating_sub(w);
    let hi = (i + w).min(seq_len); // exclusive
    (lo..hi).contains(&j)
}

/// The butterfly sparsity pattern used by the Butterfly accelerator
/// baseline (reference \[7\]): at stage `s`, position `i` connects to `i` and
/// `i XOR 2^s`. The full pattern is the union over `log2(n)` stages.
///
/// This is *not* run on SWAT; it exists so the fidelity experiments can
/// compare the patterns' expressiveness (Table 3 proxy).
///
/// # Panics
///
/// Panics if `seq_len` is not a power of two.
pub fn butterfly_pairs(seq_len: usize) -> Vec<(usize, usize)> {
    assert!(
        seq_len.is_power_of_two(),
        "butterfly pattern requires a power-of-two length"
    );
    let stages = seq_len.trailing_zeros();
    let mut pairs = Vec::new();
    for i in 0..seq_len {
        pairs.push((i, i));
        for s in 0..stages {
            let j = i ^ (1usize << s);
            pairs.push((i, j));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_attends_everything() {
        let p = SparsityPattern::dense(8);
        assert!(p.is_dense());
        assert_eq!(p.nnz(), 64);
        assert!((p.density() - 1.0).abs() < 1e-12);
        assert_eq!(p.row_targets(3).len(), 8);
    }

    #[test]
    fn window_is_banded_and_clamped() {
        let p = SparsityPattern::sliding_window(10, 2);
        assert_eq!(p.row_targets(5), vec![3, 4, 5, 6]);
        assert_eq!(p.row_targets(0), vec![0, 1]);
        assert_eq!(p.row_targets(9), vec![7, 8, 9]); // hi clamps to seq end
        assert!(p.attends(5, 3));
        assert!(p.attends(5, 6));
        assert!(!p.attends(5, 7)); // i+w is exclusive
        assert!(!p.attends(5, 2));
    }

    #[test]
    fn window_has_2w_targets_in_the_interior() {
        let p = SparsityPattern::sliding_window(100, 8);
        for i in 10..90 {
            assert_eq!(p.row_targets(i).len(), 16, "row {i}");
        }
    }

    #[test]
    fn longformer_globals_are_symmetric() {
        let p = SparsityPattern::longformer(32, 2, &[0, 7]);
        // Global rows attend everything.
        assert_eq!(p.row_targets(0).len(), 32);
        assert_eq!(p.row_targets(7).len(), 32);
        // Every row attends the global columns.
        assert!(p.attends(30, 0));
        assert!(p.attends(30, 7));
        // Non-global, non-window pairs stay masked.
        assert!(!p.attends(30, 15));
    }

    #[test]
    fn longformer_dedups_globals() {
        let p = SparsityPattern::longformer(16, 1, &[3, 3, 1]);
        assert_eq!(p.globals(), &[1, 3]);
    }

    #[test]
    fn bigbird_row_budget() {
        // 2w=8 window + 4 globals + 4 random = 16 targets in the interior.
        let p = SparsityPattern::bigbird(128, 4, 4, 4, 42);
        for i in 20..100 {
            let t = p.row_targets(i);
            assert_eq!(t.len(), 8 + 4 + 4, "row {i}: {t:?}");
        }
    }

    #[test]
    fn bigbird_random_is_deterministic_per_seed() {
        let a = SparsityPattern::bigbird(64, 2, 2, 3, 7);
        let b = SparsityPattern::bigbird(64, 2, 2, 3, 7);
        let c = SparsityPattern::bigbird(64, 2, 2, 3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bigbird_random_targets_exclude_window_and_globals() {
        let p = SparsityPattern::bigbird(256, 4, 8, 4, 3);
        for i in 0..256 {
            for &j in p.random_targets(i) {
                assert!(j >= 8, "random target {j} overlaps globals");
                assert!(
                    !(i.saturating_sub(4)..(i + 4).min(256)).contains(&j),
                    "random target {j} overlaps window of {i}"
                );
            }
        }
    }

    #[test]
    fn attends_agrees_with_row_targets() {
        let p = SparsityPattern::bigbird(64, 3, 4, 2, 11);
        for i in 0..64 {
            let t = p.row_targets(i);
            for j in 0..64 {
                assert_eq!(p.attends(i, j), t.contains(&j), "({i},{j})");
            }
        }
    }

    #[test]
    fn additive_mask_matches_pattern() {
        let p = SparsityPattern::sliding_window(12, 2);
        let m = p.to_additive_mask();
        for i in 0..12 {
            for j in 0..12 {
                let expect = if p.attends(i, j) {
                    0.0
                } else {
                    f32::NEG_INFINITY
                };
                assert_eq!(m.get(i, j), expect);
            }
        }
    }

    #[test]
    fn density_of_window_is_linear() {
        let p1 = SparsityPattern::sliding_window(1024, 16);
        let p2 = SparsityPattern::sliding_window(2048, 16);
        // Density halves when the sequence doubles: nnz is linear in n.
        assert!((p1.density() / p2.density() - 2.0).abs() < 0.05);
    }

    #[test]
    fn butterfly_pattern_shape() {
        let pairs = butterfly_pairs(16);
        // Each row: itself + log2(16)=4 partners, all distinct.
        assert_eq!(pairs.len(), 16 * 5);
        assert!(pairs.contains(&(3, 3)));
        assert!(pairs.contains(&(3, 2))); // 3 ^ 1
        assert!(pairs.contains(&(3, 1))); // 3 ^ 2
        assert!(pairs.contains(&(3, 7))); // 3 ^ 4
        assert!(pairs.contains(&(3, 11))); // 3 ^ 8
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn butterfly_rejects_non_power_of_two() {
        let _ = butterfly_pairs(12);
    }

    #[test]
    fn causal_window_properties() {
        let p = SparsityPattern::causal_window(32, 2);
        // Row 10 attends {7, 8, 9, 10}: a 2w=4 span ending at itself.
        assert_eq!(p.row_targets(10), vec![7, 8, 9, 10]);
        // No future positions, ever.
        for i in 0..32 {
            for j in (i + 1)..32 {
                assert!(!p.attends(i, j), "({i},{j}) violates causality");
            }
            assert!(p.attends(i, i), "every token sees itself");
        }
        // Early rows clamp at zero.
        assert_eq!(p.row_targets(0), vec![0]);
        assert_eq!(p.row_targets(2), vec![0, 1, 2]);
    }

    #[test]
    fn dilated_window_properties() {
        let p = SparsityPattern::dilated_window(64, 4, 3);
        // Row 30 attends {30 + 3t : t in [-4, 4)} = {18,21,24,27,30,33,36,39}.
        assert_eq!(p.row_targets(30), vec![18, 21, 24, 27, 30, 33, 36, 39]);
        // Same budget as the plain window (2w = 8 targets) ...
        assert_eq!(p.row_targets(30).len(), 8);
        // ... but triple the receptive field.
        let plain = SparsityPattern::sliding_window(64, 4);
        let reach = |p: &SparsityPattern, i: usize| {
            let t = p.row_targets(i);
            t[t.len() - 1] - t[0]
        };
        assert_eq!(reach(&p, 30), 3 * reach(&plain, 30));
        // Dilation 1 degenerates to the plain window.
        assert_eq!(
            SparsityPattern::dilated_window(64, 4, 1),
            SparsityPattern::sliding_window(64, 4)
        );
    }

    #[test]
    #[should_panic(expected = "dilation must be positive")]
    fn zero_dilation_rejected() {
        let _ = SparsityPattern::dilated_window(8, 2, 0);
    }

    #[test]
    fn from_row_targets_roundtrips() {
        let p = SparsityPattern::from_row_targets(vec![vec![0, 2], vec![1], vec![2, 0, 2]]);
        assert_eq!(p.seq_len(), 3);
        assert_eq!(p.row_targets(0), vec![0, 2]);
        assert_eq!(p.row_targets(2), vec![0, 2]); // deduped, sorted
        assert!(p.attends(1, 1));
        assert!(!p.attends(1, 0));
    }

    #[test]
    fn butterfly_pattern_via_row_targets() {
        let pairs = butterfly_pairs(8);
        let mut rows = vec![Vec::new(); 8];
        for (i, j) in pairs {
            rows[i].push(j);
        }
        let p = SparsityPattern::from_row_targets(rows);
        assert_eq!(p.row_targets(0).len(), 4); // self + log2(8) partners
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_row_targets_rejects_bad_index() {
        let _ = SparsityPattern::from_row_targets(vec![vec![5]]);
    }

    #[test]
    #[should_panic(expected = "half-width must be positive")]
    fn zero_window_rejected() {
        let _ = SparsityPattern::sliding_window(8, 0);
    }
}
