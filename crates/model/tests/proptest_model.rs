//! Property tests for the transformer substrate and cost models.

use proptest::prelude::*;
use swat_attention::SparsityPattern;
use swat_model::flops::{layer_costs, AttentionKind};
use swat_model::layer::{layer_norm, EncoderLayer};
use swat_model::ModelConfig;
use swat_tensor::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Layer costs are monotone in sequence length for both attention
    /// kinds, and dense always costs at least as much as windowed.
    #[test]
    fn costs_monotone(n1 in 1usize..16384, n2 in 1usize..16384) {
        let cfg = ModelConfig::longformer_base();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        for kind in [AttentionKind::Dense, AttentionKind::Window] {
            let c_lo = layer_costs(&cfg, lo, kind);
            let c_hi = layer_costs(&cfg, hi, kind);
            prop_assert!(c_hi.total_flops() >= c_lo.total_flops());
            prop_assert!(c_hi.total_mops() >= c_lo.total_mops());
        }
        let dense = layer_costs(&cfg, hi, AttentionKind::Dense);
        let window = layer_costs(&cfg, hi, AttentionKind::Window);
        prop_assert!(dense.attention_flops >= window.attention_flops);
    }

    /// FLOPs shares always sum to one and each lies in [0, 1].
    #[test]
    fn shares_are_probabilities(n in 1usize..20000) {
        let cfg = ModelConfig::bigbird_base();
        let c = layer_costs(&cfg, n, AttentionKind::Dense);
        let (l, a, f) = c.flops_shares();
        prop_assert!((l + a + f - 1.0).abs() < 1e-9);
        for x in [l, a, f] {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    /// Layer norm output rows have zero mean and unit variance for any
    /// non-constant input.
    #[test]
    fn layer_norm_properties(seed in any::<u64>(), n in 1usize..16, d in 4usize..64) {
        let mut rng = swat_numeric::SplitMix64::new(seed);
        let x = Matrix::from_fn(n, d, |_, _| rng.next_gaussian());
        let ln = layer_norm(&x);
        for i in 0..n {
            let row = ln.row(i);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
            prop_assert!((var - 1.0).abs() < 0.05, "var {}", var);
        }
    }

    /// Encoder layers are deterministic and produce finite outputs for
    /// any pattern choice.
    #[test]
    fn layer_forward_total(seed in any::<u64>(), n in 8usize..32) {
        let layer = EncoderLayer::random(16, 4, 2, seed);
        let mut rng = swat_numeric::SplitMix64::new(seed ^ 1);
        let x = Matrix::from_fn(n, 16, |_, _| rng.next_f32_in(-1.0, 1.0));
        for pattern in [
            SparsityPattern::dense(n),
            SparsityPattern::sliding_window(n, 2),
            SparsityPattern::causal_window(n, 2),
        ] {
            let (y, counts) = layer.forward(&x, &pattern);
            prop_assert_eq!(y.shape(), (n, 16));
            prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(counts.flops > 0);
        }
    }
}
