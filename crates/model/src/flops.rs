//! Analytic FLOPs/MOPs breakdown of a transformer encoder layer (Figure 1).
//!
//! Conventions (matching the paper's coarse accounting):
//!
//! - one multiply-accumulate = 2 FLOPs; exp/div in softmax = 1 FLOP each;
//! - MOPs count *elements moved to or from off-chip memory*, assuming the
//!   straightforward (unfused) implementation that materialises the
//!   attention score matrix.

use crate::config::ModelConfig;

/// Which attention implementation the breakdown assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionKind {
    /// Full `n²` attention (the curve plotted in Figure 1).
    Dense,
    /// Sliding-window attention with the model's window budget.
    Window,
}

/// FLOPs and MOPs of one encoder layer, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCosts {
    /// Q/K/V/output projections.
    pub linear_flops: u64,
    /// Attention proper (QK, softmax, SV).
    pub attention_flops: u64,
    /// Feed-forward network.
    pub ffn_flops: u64,
    /// Memory operations (elements moved) for the projections.
    pub linear_mops: u64,
    /// Memory operations for attention, including the S/S' round trip of
    /// the unfused implementation.
    pub attention_mops: u64,
    /// Memory operations for the FFN.
    pub ffn_mops: u64,
}

impl LayerCosts {
    /// Total FLOPs of the layer.
    pub fn total_flops(&self) -> u64 {
        self.linear_flops + self.attention_flops + self.ffn_flops
    }

    /// Total MOPs of the layer.
    pub fn total_mops(&self) -> u64 {
        self.linear_mops + self.attention_mops + self.ffn_mops
    }

    /// Attention's share of layer FLOPs, in `[0, 1]`.
    pub fn attention_flops_share(&self) -> f64 {
        self.attention_flops as f64 / self.total_flops() as f64
    }

    /// Attention's share of layer MOPs, in `[0, 1]`.
    pub fn attention_mops_share(&self) -> f64 {
        self.attention_mops as f64 / self.total_mops() as f64
    }

    /// `(linear, attention, ffn)` FLOPs shares.
    pub fn flops_shares(&self) -> (f64, f64, f64) {
        let t = self.total_flops() as f64;
        (
            self.linear_flops as f64 / t,
            self.attention_flops as f64 / t,
            self.ffn_flops as f64 / t,
        )
    }

    /// `(linear, attention, ffn)` MOPs shares.
    pub fn mops_shares(&self) -> (f64, f64, f64) {
        let t = self.total_mops() as f64;
        (
            self.linear_mops as f64 / t,
            self.attention_mops as f64 / t,
            self.ffn_mops as f64 / t,
        )
    }
}

/// Computes the per-layer cost breakdown for sequence length `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn layer_costs(cfg: &ModelConfig, n: usize, attention: AttentionKind) -> LayerCosts {
    assert!(n > 0, "sequence length must be positive");
    let n = n as u64;
    let d = cfg.d_model as u64;
    let heads = cfg.heads as u64;
    let m = cfg.ffn_mult as u64;

    // Attended positions per row.
    let a = match attention {
        AttentionKind::Dense => n,
        AttentionKind::Window => (cfg.window_tokens as u64).min(n).max(1),
    };

    // --- Linear projections: Wq, Wk, Wv, Wo, each d×d over n tokens.
    let linear_flops = 4 * 2 * n * d * d;
    // Weights + input/outputs: 4 weight matrices, read x, write q/k/v,
    // read concat, write out.
    let linear_mops = 4 * d * d + 6 * n * d;

    // --- Attention: per head, QK (n·a dot products of length H), softmax,
    // SV. Σ over heads: head_dim · heads = d.
    let attention_flops = 2 * n * a * d  // QK
        + 3 * n * a * heads              // softmax exp/sum/div
        + 2 * n * a * d; // SV
                         // Q, K, V read; S written + read twice (softmax, SV) in the unfused
                         // three-kernel implementation; Z written.
    let attention_mops = 3 * n * d + 3 * n * a * heads + n * d;

    // --- FFN: d -> m·d -> d.
    let ffn_flops = 2 * 2 * n * d * (m * d);
    let ffn_mops = 2 * m * d * d + 2 * n * d + 2 * n * m * d;

    LayerCosts {
        linear_flops,
        attention_flops,
        ffn_flops,
        linear_mops,
        attention_mops,
        ffn_mops,
    }
}

/// The input lengths plotted in Figure 1.
pub const FIGURE1_LENGTHS: [usize; 8] = [128, 256, 512, 1024, 2048, 4096, 8192, 16384];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_share_grows_with_length() {
        let cfg = ModelConfig::longformer_base();
        let mut prev = 0.0;
        for &n in &FIGURE1_LENGTHS {
            let c = layer_costs(&cfg, n, AttentionKind::Dense);
            let share = c.attention_flops_share();
            assert!(share > prev, "share must grow: {share} at n={n}");
            prev = share;
        }
        // At 16K tokens attention dominates (Figure 1's headline).
        assert!(prev > 0.7, "attention share at 16K is {prev}");
    }

    #[test]
    fn attention_mops_dominate_at_long_lengths() {
        let cfg = ModelConfig::longformer_base();
        let c = layer_costs(&cfg, 16384, AttentionKind::Dense);
        assert!(c.attention_mops_share() > 0.9);
        let c_short = layer_costs(&cfg, 128, AttentionKind::Dense);
        assert!(c_short.attention_mops_share() < 0.5);
    }

    #[test]
    fn window_attention_is_linear_in_n() {
        let cfg = ModelConfig::longformer_base();
        let c1 = layer_costs(&cfg, 4096, AttentionKind::Window);
        let c2 = layer_costs(&cfg, 8192, AttentionKind::Window);
        let ratio = c2.attention_flops as f64 / c1.attention_flops as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // Dense grows 4x over the same doubling.
        let d1 = layer_costs(&cfg, 4096, AttentionKind::Dense);
        let d2 = layer_costs(&cfg, 8192, AttentionKind::Dense);
        let dratio = d2.attention_flops as f64 / d1.attention_flops as f64;
        assert!((dratio - 4.0).abs() < 0.01, "dense ratio {dratio}");
    }

    #[test]
    fn shares_sum_to_one() {
        let cfg = ModelConfig::longformer_base();
        let c = layer_costs(&cfg, 1024, AttentionKind::Dense);
        let (l, a, f) = c.flops_shares();
        assert!((l + a + f - 1.0).abs() < 1e-12);
        let (lm, am, fm) = c.mops_shares();
        assert!((lm + am + fm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ffn_dominates_at_short_lengths() {
        // The classic picture: at 128 tokens the FFN is the biggest FLOPs
        // consumer, not attention.
        let cfg = ModelConfig::longformer_base();
        let c = layer_costs(&cfg, 128, AttentionKind::Dense);
        assert!(c.ffn_flops > c.attention_flops);
        assert!(c.ffn_flops > c.linear_flops);
    }

    #[test]
    fn window_caps_attended_positions() {
        let cfg = ModelConfig::longformer_base();
        // Below the window size, window and dense coincide.
        let w = layer_costs(&cfg, 256, AttentionKind::Window);
        let d = layer_costs(&cfg, 256, AttentionKind::Dense);
        assert_eq!(w.attention_flops, d.attention_flops);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_rejected() {
        let _ = layer_costs(&ModelConfig::longformer_base(), 0, AttentionKind::Dense);
    }
}
