//! Transformer-model substrate: layer forward passes and analytic cost
//! models.
//!
//! The paper motivates SWAT with a cost breakdown of a transformer layer
//! (Figure 1): as the input grows, attention FLOPs and memory operations
//! dominate the linear projections and the FFN. This crate provides:
//!
//! - [`config`]: named model configurations (Longformer-base, BigBird-base,
//!   and the ViL variants of Table 4);
//! - [`flops`]: the analytic FLOPs/MOPs breakdown per layer component that
//!   regenerates Figure 1;
//! - [`layer`]: a functional encoder layer (multi-head attention + FFN +
//!   layer norm + residuals) for end-to-end examples and integration tests.
//!
//! # Examples
//!
//! ```
//! use swat_model::config::ModelConfig;
//! use swat_model::flops::layer_costs;
//!
//! let cfg = ModelConfig::longformer_base();
//! let short = layer_costs(&cfg, 128, swat_model::flops::AttentionKind::Dense);
//! let long = layer_costs(&cfg, 16384, swat_model::flops::AttentionKind::Dense);
//! // Attention's share of FLOPs grows with input length (Figure 1).
//! assert!(long.attention_flops_share() > short.attention_flops_share());
//! ```

pub mod config;
pub mod flops;
pub mod layer;

pub use config::ModelConfig;
