//! A functional transformer encoder layer.
//!
//! Pre-norm architecture: `x + MHA(LN(x))`, then `y + FFN(LN(y))` with GELU
//! activation. This is the substrate the end-to-end examples run: the
//! attention inside can be dense, Longformer-window or BigBird, and can be
//! swapped for the SWAT-simulated kernel in integration tests.

use swat_attention::multihead::{multi_head_attention, MultiHeadWeights};
use swat_attention::{OpCounts, SparsityPattern};
use swat_tensor::{ops, Matrix};

/// Weights of one encoder layer.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    /// Multi-head attention weights.
    pub attention: MultiHeadWeights,
    /// FFN first linear, `d × (mult·d)`.
    pub ffn_up: Matrix<f32>,
    /// FFN second linear, `(mult·d) × d`.
    pub ffn_down: Matrix<f32>,
}

impl EncoderLayer {
    /// Random small-magnitude weights for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d_model` or `ffn_mult == 0`.
    pub fn random(d_model: usize, heads: usize, ffn_mult: usize, seed: u64) -> EncoderLayer {
        assert!(ffn_mult > 0, "ffn_mult must be positive");
        let mut rng = swat_numeric::SplitMix64::new(seed ^ 0xFFEE);
        let std_up = 1.0 / (d_model as f32).sqrt();
        let std_down = 1.0 / ((ffn_mult * d_model) as f32).sqrt();
        EncoderLayer {
            attention: MultiHeadWeights::random(d_model, heads, seed),
            ffn_up: Matrix::from_fn(d_model, ffn_mult * d_model, |_, _| {
                rng.next_gaussian() * std_up
            }),
            ffn_down: Matrix::from_fn(ffn_mult * d_model, d_model, |_, _| {
                rng.next_gaussian() * std_down
            }),
        }
    }

    /// Model dimension `d`.
    pub fn d_model(&self) -> usize {
        self.attention.wq.rows()
    }

    /// Forward pass over `x` (`seq_len × d`), attending with `pattern`.
    ///
    /// Returns the output and aggregated operation counts.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(&self, x: &Matrix<f32>, pattern: &SparsityPattern) -> (Matrix<f32>, OpCounts) {
        let mut counts = OpCounts::new();

        // Attention sublayer with residual.
        let normed = layer_norm(x);
        let attn = multi_head_attention(&normed, &self.attention, pattern);
        counts.merge(&attn.counts);
        let y = x.add(&attn.output);

        // FFN sublayer with residual.
        let normed = layer_norm(&y);
        let up = ops::gemm(&normed, &self.ffn_up);
        let act = up.map(gelu);
        let down = ops::gemm(&act, &self.ffn_down);
        let n = x.rows() as u64;
        let d = self.d_model() as u64;
        let m = self.ffn_up.cols() as u64;
        counts.record_macs(n * d * m + n * m * d);
        counts.record_unary(n * m); // activation
        let out = y.add(&down);

        (out, counts)
    }
}

/// Row-wise layer normalisation (no learned scale/shift; the cost model
/// ignores them and they do not affect any experiment).
pub fn layer_norm(x: &Matrix<f32>) -> Matrix<f32> {
    let d = x.cols();
    Matrix::from_fn(x.rows(), d, |i, j| {
        let row = x.row(i);
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        (x.get(i, j) - mean) / (var + 1e-5).sqrt()
    })
}

/// The GELU activation (tanh approximation).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((2.0 / core::f32::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
}

/// A stack of encoder layers sharing one sparsity pattern.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// The layers, applied in order.
    pub layers: Vec<EncoderLayer>,
}

impl Encoder {
    /// Builds an encoder of `n_layers` randomly-initialised layers.
    pub fn random(
        d_model: usize,
        heads: usize,
        ffn_mult: usize,
        n_layers: usize,
        seed: u64,
    ) -> Encoder {
        Encoder {
            layers: (0..n_layers)
                .map(|l| EncoderLayer::random(d_model, heads, ffn_mult, seed + l as u64))
                .collect(),
        }
    }

    /// Runs all layers; returns the final activations and total counts.
    pub fn forward(&self, x: &Matrix<f32>, pattern: &SparsityPattern) -> (Matrix<f32>, OpCounts) {
        let mut counts = OpCounts::new();
        let mut h = x.clone();
        for layer in &self.layers {
            let (next, c) = layer.forward(&h, pattern);
            counts.merge(&c);
            h = next;
        }
        (h, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: usize, d: usize, seed: u64) -> Matrix<f32> {
        let mut rng = swat_numeric::SplitMix64::new(seed);
        Matrix::from_fn(n, d, |_, _| rng.next_f32_in(-1.0, 1.0))
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let x = input(6, 32, 50);
        let ln = layer_norm(&x);
        for i in 0..6 {
            let row = ln.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 32.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 32.0;
            assert!(mean.abs() < 1e-4, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {i} var {var}");
        }
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.841).abs() < 0.01);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let layer = EncoderLayer::random(16, 4, 2, 60);
        let x = input(24, 16, 61);
        let p = SparsityPattern::sliding_window(24, 3);
        let (a, ca) = layer.forward(&x, &p);
        let (b, _) = layer.forward(&x, &p);
        assert_eq!(a.shape(), (24, 16));
        assert_eq!(a, b);
        assert!(ca.flops > 0);
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn residual_keeps_output_near_input_scale() {
        let layer = EncoderLayer::random(16, 2, 2, 62);
        let x = input(12, 16, 63);
        let p = SparsityPattern::dense(12);
        let (y, _) = layer.forward(&x, &p);
        // Residual connections keep the magnitude in a sane range.
        assert!(y.frobenius_norm() < 50.0 * x.frobenius_norm());
        assert!(y.frobenius_norm() > 0.05 * x.frobenius_norm());
    }

    #[test]
    fn encoder_stacks_layers() {
        let enc = Encoder::random(8, 2, 2, 3, 70);
        let x = input(10, 8, 71);
        let p = SparsityPattern::sliding_window(10, 2);
        let (y, counts) = enc.forward(&x, &p);
        assert_eq!(y.shape(), (10, 8));
        let single = enc.layers[0].forward(&x, &p).1;
        assert!(counts.flops > 2 * single.flops);
    }

    #[test]
    fn sparse_encoder_costs_less_than_dense() {
        let enc = Encoder::random(16, 4, 2, 1, 72);
        let x = input(64, 16, 73);
        let sparse = enc.forward(&x, &SparsityPattern::sliding_window(64, 4)).1;
        let dense = enc.forward(&x, &SparsityPattern::dense(64)).1;
        assert!(sparse.flops < dense.flops);
    }
}
