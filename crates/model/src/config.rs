//! Named transformer model configurations.

use swat_attention::SparsityPattern;

/// The attention pattern family a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Full quadratic attention.
    Dense,
    /// Sliding window only (Longformer without globals).
    Window,
    /// Window + global + static random (BigBird).
    BigBird,
}

/// Dimensions and sparsity parameters of a transformer model.
///
/// # Examples
///
/// ```
/// use swat_model::ModelConfig;
///
/// let cfg = ModelConfig::longformer_base();
/// assert_eq!(cfg.head_dim(), 64);
/// assert_eq!(cfg.window_tokens, 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Model (embedding) dimension `d`.
    pub d_model: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// FFN expansion factor (4 in the standard transformer).
    pub ffn_mult: usize,
    /// Number of encoder layers.
    pub layers: usize,
    /// Attention pattern family.
    pub pattern: PatternKind,
    /// Window tokens per row (`2w` in the paper; 0 for dense).
    pub window_tokens: usize,
    /// Global tokens (BigBird/Longformer classification tokens).
    pub global_tokens: usize,
    /// Static random tokens per row (BigBird).
    pub random_tokens: usize,
}

impl ModelConfig {
    /// Longformer-base with the paper's standard setup: `d = 768`, 12 heads
    /// (`H = 64`), window `2w = 512`, 12 layers.
    pub fn longformer_base() -> ModelConfig {
        ModelConfig {
            name: "Longformer-base",
            d_model: 768,
            heads: 12,
            ffn_mult: 4,
            layers: 12,
            pattern: PatternKind::Window,
            window_tokens: 512,
            global_tokens: 0,
            random_tokens: 0,
        }
    }

    /// BigBird-base in the paper's Table 2 configuration: 192 window
    /// tokens, 128 global tokens, 192 random tokens (512 attended tokens
    /// per row in total).
    pub fn bigbird_base() -> ModelConfig {
        ModelConfig {
            name: "BigBird-base",
            d_model: 768,
            heads: 12,
            ffn_mult: 4,
            layers: 12,
            pattern: PatternKind::BigBird,
            window_tokens: 192,
            global_tokens: 128,
            random_tokens: 192,
        }
    }

    /// A vanilla dense transformer with Longformer-base dimensions, used as
    /// the dense baseline in Figures 1 and 3.
    pub fn dense_base() -> ModelConfig {
        ModelConfig {
            name: "Dense-base",
            d_model: 768,
            heads: 12,
            ffn_mult: 4,
            layers: 12,
            pattern: PatternKind::Dense,
            window_tokens: 0,
            global_tokens: 0,
            random_tokens: 0,
        }
    }

    /// Vision Longformer (ViL-Tiny scale) as referenced by Table 4 — a
    /// smaller-dimension window-attention model.
    pub fn vil_tiny() -> ModelConfig {
        ModelConfig {
            name: "ViL-Tiny",
            d_model: 192,
            heads: 3,
            ffn_mult: 4,
            layers: 12,
            pattern: PatternKind::Window,
            window_tokens: 144,
            global_tokens: 1,
            random_tokens: 0,
        }
    }

    /// Head dimensionality `H = d_model / heads` (64 in the paper's default
    /// configuration).
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d_model`.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.heads > 0 && self.d_model.is_multiple_of(self.heads),
            "heads must divide d_model"
        );
        self.d_model / self.heads
    }

    /// Window half-width `w` (`window_tokens / 2`).
    pub fn window_half_width(&self) -> usize {
        self.window_tokens / 2
    }

    /// Tokens attended per row in the interior of the sequence.
    pub fn attended_per_row(&self, seq_len: usize) -> usize {
        match self.pattern {
            PatternKind::Dense => seq_len,
            PatternKind::Window => self.window_tokens.min(seq_len),
            PatternKind::BigBird => {
                (self.window_tokens + self.global_tokens + self.random_tokens).min(seq_len)
            }
        }
    }

    /// Builds the concrete [`SparsityPattern`] for a given sequence length.
    ///
    /// # Panics
    ///
    /// Panics for sparse configurations whose token budgets exceed
    /// `seq_len`.
    pub fn pattern_for(&self, seq_len: usize, seed: u64) -> SparsityPattern {
        match self.pattern {
            PatternKind::Dense => SparsityPattern::dense(seq_len),
            PatternKind::Window => {
                if self.global_tokens > 0 {
                    let globals: Vec<usize> = (0..self.global_tokens).collect();
                    SparsityPattern::longformer(seq_len, self.window_half_width().max(1), &globals)
                } else {
                    SparsityPattern::sliding_window(seq_len, self.window_half_width().max(1))
                }
            }
            PatternKind::BigBird => SparsityPattern::bigbird(
                seq_len,
                self.window_half_width().max(1),
                self.global_tokens,
                self.random_tokens,
                seed,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longformer_dimensions() {
        let cfg = ModelConfig::longformer_base();
        assert_eq!(cfg.head_dim(), 64);
        assert_eq!(cfg.window_half_width(), 256);
        assert_eq!(cfg.attended_per_row(4096), 512);
        // Short sequences clamp.
        assert_eq!(cfg.attended_per_row(128), 128);
    }

    #[test]
    fn bigbird_budget_is_512() {
        let cfg = ModelConfig::bigbird_base();
        assert_eq!(
            cfg.window_tokens + cfg.global_tokens + cfg.random_tokens,
            512
        );
        assert_eq!(cfg.attended_per_row(4096), 512);
    }

    #[test]
    fn patterns_materialize() {
        let n = 2048;
        let lf = ModelConfig::longformer_base().pattern_for(n, 1);
        assert_eq!(lf.seq_len(), n);
        assert_eq!(lf.row_targets(1024).len(), 512);

        let bb = ModelConfig::bigbird_base().pattern_for(n, 1);
        assert_eq!(bb.row_targets(1024).len(), 512);

        let dense = ModelConfig::dense_base().pattern_for(64, 0);
        assert!(dense.is_dense());
    }

    #[test]
    fn vil_head_dim() {
        assert_eq!(ModelConfig::vil_tiny().head_dim(), 64);
    }
}
