//! End-to-end integration: the SWAT simulator drops into a transformer
//! layer in place of the software attention, and the whole stack stays
//! numerically consistent.

use swat::{Precision, SwatAccelerator, SwatConfig};
use swat_attention::multihead::MultiHeadWeights;
use swat_attention::reference;
use swat_tensor::{ops, Matrix};
use swat_workloads::generators::Workload;

/// Runs a multi-head attention block where each head's attention is
/// computed by the SWAT simulator instead of the software kernel.
fn multi_head_on_swat(
    x: &Matrix<f32>,
    weights: &MultiHeadWeights,
    accel: &SwatAccelerator,
) -> Matrix<f32> {
    let n = x.rows();
    let d = weights.wq.rows();
    let h = weights.head_dim();
    let q = ops::gemm(x, &weights.wq);
    let k = ops::gemm(x, &weights.wk);
    let v = ops::gemm(x, &weights.wv);
    let slice_head =
        |m: &Matrix<f32>, head: usize| Matrix::from_fn(n, h, |i, j| m.get(i, head * h + j));
    let mut concat = Matrix::<f32>::zeros(n, d);
    for head in 0..weights.heads {
        let out = accel
            .run(
                &slice_head(&q, head),
                &slice_head(&k, head),
                &slice_head(&v, head),
            )
            .expect("run succeeds");
        for i in 0..n {
            for j in 0..h {
                concat.set(i, head * h + j, out.output.get(i, j));
            }
        }
    }
    ops::gemm(&concat, &weights.wo)
}

#[test]
fn swat_substitutes_for_software_attention_in_a_layer() {
    let n = 256;
    let d = 128;
    let heads = 2; // head_dim = 64, SWAT's H
    let cfg = SwatConfig {
        window_tokens: 32,
        precision: Precision::Fp32,
        ..SwatConfig::longformer_fp16()
    };
    let accel = SwatAccelerator::new(cfg.clone()).unwrap();
    let weights = MultiHeadWeights::random(d, heads, 11);
    let x = Workload::LocalTexture.generate(n, d, 5).scale(0.3);

    let hw = multi_head_on_swat(&x, &weights, &accel);
    let sw = swat_attention::multihead::multi_head_attention(&x, &weights, &cfg.pattern_for(n));

    let diff = hw.max_abs_diff(&sw.output);
    assert!(diff < 1e-3, "hardware-simulated layer diverges: {diff}");
}

#[test]
fn fp16_and_fp32_designs_agree_on_wellscaled_inputs() {
    let mk = |precision| {
        SwatAccelerator::new(SwatConfig {
            window_tokens: 64,
            precision,
            ..SwatConfig::longformer_fp16()
        })
        .unwrap()
    };
    let f16 = mk(Precision::Fp16);
    let f32_ = mk(Precision::Fp32);
    let (q, k, v) = Workload::LocalTexture.generate_qkv(256, 64, 9);
    let (q, k) = (q.scale(0.3), k.scale(0.3));
    let a = f16.run(&q, &k, &v).unwrap();
    let b = f32_.run(&q, &k, &v).unwrap();
    let diff = a.output.max_abs_diff(&b.output);
    assert!(diff < 0.05, "precision gap too large: {diff}");
    // FP32 is slower per row but otherwise identical in dataflow.
    assert!(a.initiation_interval < b.initiation_interval);
    assert_eq!(a.kv_loads, b.kv_loads);
}

#[test]
fn simulated_dataflow_matches_direct_window_attention_counts() {
    // The simulator's useful FLOPs must equal the exact window-attention
    // kernel's (SWAT does no redundant work, unlike sliding chunks).
    let cfg = SwatConfig {
        window_tokens: 64,
        precision: Precision::Fp32,
        ..SwatConfig::longformer_fp16()
    };
    let accel = SwatAccelerator::new(cfg).unwrap();
    let (q, k, v) = Workload::Uniform.generate_qkv(300, 64, 13);
    let report = accel.run(&q, &k, &v).unwrap();
    let direct = swat_attention::window::window_attention(&q, &k, &v, 32, 0.125);
    assert_eq!(report.counts.useful_flops, report.counts.flops);
    // Same attended pairs -> same MAC counts (exp/div bookkeeping differs
    // by a constant factor per row).
    let rel = report.counts.flops as f64 / direct.counts.flops as f64;
    assert!((0.9..1.1).contains(&rel), "FLOP ratio {rel}");
}

#[test]
fn bigbird_config_end_to_end() {
    let cfg = SwatConfig {
        window_tokens: 32,
        global_tokens: 8,
        random_tokens: 8,
        precision: Precision::Fp32,
        ..SwatConfig::longformer_fp16()
    };
    let accel = SwatAccelerator::new(cfg.clone()).unwrap();
    let (q, k, v) = Workload::ScatteredDependencies.generate_qkv(200, 64, 21);
    let (q, k) = (q.scale(0.3), k.scale(0.3));
    let report = accel.run(&q, &k, &v).unwrap();
    let expect = reference::masked_attention(&q, &k, &v, &cfg.pattern_for(200), cfg.scale);
    assert!(report.output.max_abs_diff(&expect) < 1e-3);
    assert!(report.kv_reloads > 0, "random cores must reload");
}

#[test]
fn dual_pipeline_produces_identical_numerics() {
    let base = SwatConfig {
        window_tokens: 32,
        precision: Precision::Fp32,
        ..SwatConfig::longformer_fp16()
    };
    let dual = SwatConfig {
        pipelines: 2,
        ..base.clone()
    };
    let a1 = SwatAccelerator::new(base).unwrap();
    let a2 = SwatAccelerator::new(dual).unwrap();
    let (q, k, v) = Workload::Uniform.generate_qkv(128, 64, 33);
    let r1 = a1.run(&q, &k, &v).unwrap();
    let r2 = a2.run(&q, &k, &v).unwrap();
    assert_eq!(
        r1.output, r2.output,
        "pipelining is a throughput feature only"
    );
}
