//! Shape assertions for every reproduced figure: these tests encode what
//! the paper's evaluation *shows* (who wins, by roughly what factor, where
//! crossovers fall), so a regression in any model breaks the reproduction
//! visibly. EXPERIMENTS.md documents the paper-vs-measured numbers these
//! tests pin down.

use swat::{SwatAccelerator, SwatConfig};
use swat_baselines::butterfly::{swat_energy_ratio, swat_speedup, ButterflyAccelerator};
use swat_baselines::{GpuCostModel, GpuKernel};
use swat_model::flops::{layer_costs, AttentionKind};
use swat_model::ModelConfig;

const H: usize = 64;
const W: usize = 256;

fn swat16() -> SwatAccelerator {
    SwatAccelerator::new(SwatConfig::longformer_fp16()).unwrap()
}

fn swat32() -> SwatAccelerator {
    SwatAccelerator::new(SwatConfig::longformer_fp32()).unwrap()
}

// --- Figure 1 -----------------------------------------------------------

#[test]
fn figure1_attention_dominates_at_long_lengths() {
    let cfg = ModelConfig::longformer_base();
    let short = layer_costs(&cfg, 128, AttentionKind::Dense);
    let long = layer_costs(&cfg, 16384, AttentionKind::Dense);
    assert!(short.attention_flops_share() < 0.1);
    assert!(long.attention_flops_share() > 0.7);
    assert!(long.attention_mops_share() > 0.9);
}

// --- Figure 3 -----------------------------------------------------------

#[test]
fn figure3_swat_is_linear_gpu_dense_quadratic() {
    let accel = swat16();
    let gpu = GpuCostModel::mi210();
    let swat_ratio = accel.latency_seconds(16384) / accel.latency_seconds(4096);
    assert!(
        (swat_ratio - 4.0).abs() < 0.05,
        "SWAT 4x tokens = 4x time: {swat_ratio}"
    );
    let gpu_ratio = gpu.attention_seconds(GpuKernel::Dense, 16384, H)
        / gpu.attention_seconds(GpuKernel::Dense, 4096, H);
    assert!(
        gpu_ratio > 6.0,
        "GPU leaves the flat region and grows superlinearly: {gpu_ratio}"
    );
}

#[test]
fn figure3_swat_wins_at_short_and_long_lengths() {
    let gpu = GpuCostModel::mi210();
    let f16 = swat16();
    let f32_ = swat32();
    // Short: GPU is floor-bound, SWAT is ~10x faster.
    assert!(gpu.attention_seconds(GpuKernel::Dense, 512, H) > 5.0 * f16.latency_seconds(512));
    // Middle: FP32 SWAT is comparable to the GPU (within 40%).
    let mid = f32_.latency_seconds(8192) / gpu.attention_seconds(GpuKernel::Dense, 8192, H);
    assert!((0.6..1.4).contains(&mid), "8K comparable: {mid}");
    // Long: SWAT scales better.
    let long = f32_.latency_seconds(16384) / gpu.attention_seconds(GpuKernel::Dense, 16384, H);
    assert!(long < 0.8, "16K: SWAT pulls ahead: {long}");
}

#[test]
fn figure3_chunks_save_memory_but_not_time() {
    let gpu = GpuCostModel::mi210();
    for n in [8192usize, 16384] {
        let dense = gpu.attention_cost(GpuKernel::Dense, n, H);
        let chunks = gpu.attention_cost(GpuKernel::SlidingChunks { w: W }, n, H);
        assert!(chunks.score_memory_bytes * 4 < dense.score_memory_bytes);
        let t = chunks.seconds / dense.seconds;
        assert!((0.5..2.0).contains(&t), "time stays comparable: {t}");
    }
}

// --- Figure 8 -----------------------------------------------------------

#[test]
fn figure8_speedup_anchors_and_monotonicity() {
    let accel = swat16();
    let btf1 = ButterflyAccelerator::btf(1);
    let btf2 = ButterflyAccelerator::btf(2);
    let s1_4k = swat_speedup(&btf1, accel.latency_seconds(4096), 4096);
    let s2_4k = swat_speedup(&btf2, accel.latency_seconds(4096), 4096);
    assert!((6.0..7.5).contains(&s1_4k), "paper: 6.7x, got {s1_4k}");
    assert!((11.0..13.5).contains(&s2_4k), "paper: 12.2x, got {s2_4k}");
    let s1_16k = swat_speedup(&btf1, accel.latency_seconds(16384), 16384);
    assert!((21.0..23.0).contains(&s1_16k), "paper: 22x, got {s1_16k}");
    // Monotone growth with length (declining Butterfly scalability).
    let mut prev = 0.0;
    for n in [1024usize, 2048, 4096, 8192, 16384] {
        let s = swat_speedup(&btf1, accel.latency_seconds(n), n);
        assert!(s > prev);
        prev = s;
    }
}

// --- Figure 9 -----------------------------------------------------------

#[test]
fn figure9_energy_vs_butterfly() {
    let accel = swat16();
    let t = accel.latency_seconds(16384);
    let e1 = swat_energy_ratio(&ButterflyAccelerator::btf(1), t, accel.power_watts(), 16384);
    let e2 = swat_energy_ratio(&ButterflyAccelerator::btf(2), t, accel.power_watts(), 16384);
    assert!((10.0..13.0).contains(&e1), "paper: 11.4x, got {e1}");
    assert!((19.0..23.0).contains(&e2), "paper: 21.9x, got {e2}");
}

#[test]
fn figure9_fp32_vs_gpu_is_u_shaped() {
    let gpu = GpuCostModel::mi210();
    let accel = swat32();
    let ratio =
        |n: usize| gpu.attention_energy(GpuKernel::Dense, n, H) / accel.energy_per_attention(n);
    let r1k = ratio(1024);
    let r8k = ratio(8192);
    let r16k = ratio(16384);
    // Paper: 20x at 1K, minimum 4.2x at 8K, back to 8.4x at 16K.
    assert!((15.0..25.0).contains(&r1k), "1K: {r1k}");
    assert!((3.5..6.0).contains(&r8k), "8K: {r8k}");
    assert!((7.0..10.0).contains(&r16k), "16K: {r16k}");
    assert!(r8k < r1k && r8k < r16k, "minimum near 8K");
}

#[test]
fn figure9_fp16_headline_15x() {
    let gpu = GpuCostModel::mi210();
    let accel = swat16();
    let r = gpu.attention_energy(GpuKernel::Dense, 16384, H) / accel.energy_per_attention(16384);
    assert!((13.0..18.0).contains(&r), "paper headline ~15x, got {r}");
}

// --- Headline claims ----------------------------------------------------

#[test]
fn abstract_claims_hold() {
    // "22x and 5.7x improvement in latency and energy efficiency compared
    // to the baseline FPGA-based accelerator" — the 22x is BTF-1 latency
    // at 16K; 5.7x is the BigBird-config energy ratio at the Longformer
    // standard length region. We pin the latency claim and check the
    // energy ratio brackets 5.7 somewhere in the sweep.
    let accel = swat16();
    let btf1 = ButterflyAccelerator::btf(1);
    let s = swat_speedup(&btf1, accel.latency_seconds(16384), 16384);
    assert!((21.0..23.0).contains(&s));

    let mut bracket = false;
    for n in [1024usize, 2048, 4096, 8192, 16384] {
        let e = swat_energy_ratio(&btf1, accel.latency_seconds(n), accel.power_watts(), n);
        if (4.0..8.0).contains(&e) {
            bracket = true;
        }
    }
    assert!(bracket, "a 5.7x-scale energy ratio appears along the sweep");
}
