//! Cross-crate integration: the serving layer composed with the real
//! accelerator, hardware and workload models.

use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::policy::{all_policies, LeastLoaded};
use swat_serve::sim::{serve, simulate, AdmissionControl, Simulation, TrafficSpec};
use swat_workloads::{RequestClass, RequestMix};

fn spec(seed: u64) -> TrafficSpec {
    TrafficSpec {
        arrivals: ArrivalProcess::poisson(100.0),
        mix: RequestMix::Production,
        seed,
    }
}

#[test]
fn four_card_fleet_serves_production_traffic() {
    let fleet = FleetConfig::standard(4);
    for mut policy in all_policies() {
        let report = serve(&fleet, &mut *policy, &spec(1), 600);
        assert_eq!(report.completed, 600, "{}", report.policy);
        assert_eq!(report.cards.len(), 4);
        // Every card got work under every policy at this load.
        assert!(
            report.cards.iter().all(|c| c.served > 0),
            "{}: {:?}",
            report.policy,
            report.cards.iter().map(|c| c.served).collect::<Vec<_>>()
        );
        let latency = report.latency.unwrap();
        assert!(latency.p50 <= latency.p95);
        assert!(latency.p95 <= latency.p99);
        assert!(report.energy_joules > 0.0);
    }
}

#[test]
fn service_times_come_from_the_calibrated_model() {
    // A single request on an idle fleet finishes after exactly its cold
    // weight swap plus jobs × per-head latency from the Table 1 timing
    // model.
    let fleet_cfg = FleetConfig::standard(1);
    let fleet = fleet_cfg.build().unwrap();
    let requests = spec(3).requests(1);
    let report = simulate(&fleet_cfg, &mut LeastLoaded, &requests, false);
    let shape = requests[0].shape;
    let card = &fleet.cards()[0];
    let expect = card.swap_seconds(&shape)
        + card.accelerator().latency_seconds(shape.seq_len) * shape.jobs() as f64;
    let latency = report.latency.unwrap().p50;
    assert!(
        (latency - expect).abs() < 1e-9,
        "idle-fleet latency {latency} vs model {expect}"
    );
}

#[test]
fn head_affinity_reduces_weight_swaps() {
    // The whole point of affinity dispatch: pinning model families to home
    // cards keeps weights resident. Light load, so the home card is
    // usually free and the policy's preference actually lands.
    let fleet = FleetConfig::standard(4);
    let light = TrafficSpec {
        arrivals: ArrivalProcess::poisson(4.0),
        mix: RequestMix::Production,
        seed: 13,
    };
    let requests = light.requests(800);
    let fifo = simulate(&fleet, &mut swat_serve::policy::Fifo, &requests, false);
    let affinity = simulate(
        &fleet,
        &mut swat_serve::policy::HeadAffinity,
        &requests,
        false,
    );
    // Not a full elimination: more families than cards means some homes
    // are shared (pigeonhole), so a sizeable reduction is the right bar.
    assert!(
        (affinity.weight_swaps() as f64) < 0.7 * fifo.weight_swaps() as f64,
        "affinity swaps {} vs fifo swaps {}",
        affinity.weight_swaps(),
        fifo.weight_swaps()
    );
}

#[test]
fn more_cards_reduce_tail_latency() {
    let requests = spec(7).requests(800);
    let small = simulate(
        &FleetConfig::standard(2),
        &mut LeastLoaded,
        &requests,
        false,
    );
    let large = simulate(
        &FleetConfig::standard(8),
        &mut LeastLoaded,
        &requests,
        false,
    );
    let (large_lat, small_lat) = (large.latency.unwrap(), small.latency.unwrap());
    assert!(
        large_lat.p99 <= small_lat.p99,
        "8 cards p99 {} vs 2 cards p99 {}",
        large_lat.p99,
        small_lat.p99
    );
    assert!(large.queue.max_depth <= small.queue.max_depth);
}

#[test]
fn mixed_precision_fleet_serves_production_traffic() {
    // Heterogeneous deployment: the FP16 dual-pipeline pool is faster per
    // token than the FP32 singles, every policy keeps both pools busy,
    // and the report accounts each card to its group.
    let fleet = FleetConfig::mixed_precision(3, 2);
    for mut policy in all_policies() {
        let report = serve(&fleet, &mut *policy, &spec(19), 600);
        assert_eq!(report.completed, 600, "{}", report.policy);
        assert_eq!(report.cards.len(), 5);
        assert_eq!(report.groups.len(), 2);
        assert!(
            report.groups.iter().all(|g| g.served > 0),
            "{}: {:?}",
            report.policy,
            report.groups
        );
        let built = fleet.build().unwrap();
        assert!(
            built.cards()[0].seconds_per_token() < built.cards()[3].seconds_per_token(),
            "FP16 cards must estimate faster than FP32"
        );
    }
}

#[test]
fn admission_control_protects_interactive_tail() {
    // Sustained overload: shedding background filler must not hurt (and
    // should help) the interactive class's tail latency.
    let fleet = FleetConfig::standard(2);
    let heavy = TrafficSpec {
        arrivals: ArrivalProcess::poisson(40.0),
        mix: RequestMix::Production,
        seed: 23,
    };
    let requests = heavy.requests(700);
    let open = simulate(&fleet, &mut LeastLoaded, &requests, false);
    let capped = Simulation::new(&fleet)
        .admission(AdmissionControl::shed_background_at(8))
        .run(&mut LeastLoaded, &requests);
    assert!(capped.rejected > 0);
    assert_eq!(
        capped.class(RequestClass::Background).unwrap().rejected,
        capped.rejected,
        "only the lowest class may be shed"
    );
    let open_p99 = open
        .class(RequestClass::Interactive)
        .unwrap()
        .latency
        .unwrap()
        .p99;
    let capped_p99 = capped
        .class(RequestClass::Interactive)
        .unwrap()
        .latency
        .unwrap()
        .p99;
    assert!(
        capped_p99 <= open_p99,
        "interactive p99 {capped_p99} must not regress past {open_p99}"
    );
}

#[test]
fn json_report_has_the_required_fields() {
    let report = serve(&FleetConfig::standard(4), &mut LeastLoaded, &spec(9), 200);
    let json = report.to_json().pretty();
    for key in [
        "\"policy\"",
        "\"arrivals\"",
        "\"p50_s\"",
        "\"p95_s\"",
        "\"p99_s\"",
        "\"slo_violations\"",
        "\"energy_j\"",
        "\"fleet_utilization\"",
        "\"max_depth\"",
        "\"cards\"",
        "\"classes\"",
        "\"groups\"",
        "\"rejected\"",
        "\"sharded_requests\"",
        "\"max_shards\"",
        "\"slo_attainment\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}

#[test]
fn replay_is_reproducible_across_entry_points() {
    // Generating the trace and serving it manually must agree with the
    // `serve` convenience wrapper, bit for bit.
    let fleet = FleetConfig::standard(3);
    let requests = spec(11).requests(300);
    let manual = simulate(&fleet, &mut LeastLoaded, &requests, false);
    let wrapped = serve(&fleet, &mut LeastLoaded, &spec(11), 300);
    assert_eq!(manual.latency, wrapped.latency);
    assert_eq!(manual.queue.max_depth, wrapped.queue.max_depth);
    assert_eq!(manual.energy_joules, wrapped.energy_joules);
}
