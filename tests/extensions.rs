//! Integration tests for the extension features (DESIGN.md §6): causal
//! decode, the scheduler, the HBM channel model and the stable-softmax
//! variant, exercised together across crates.

use swat::schedule::schedule_model;
use swat::{Precision, SwatAccelerator, SwatConfig};
use swat_attention::stable::stable_window_attention_in;
use swat_attention::{reference, SparsityPattern};
use swat_hw::hbm::HbmModel;
use swat_numeric::F16;
use swat_workloads::generators::Workload;

#[test]
fn causal_window_runs_through_the_simulator() {
    // The fused kernel handles arbitrary patterns; a causal pattern must
    // produce the masked-reference result through the full stack.
    let n = 128;
    let (q, k, v) = Workload::LocalTexture.generate_qkv(n, 64, 50);
    let (q, k) = (q.scale(0.3), k.scale(0.3));
    let p = SparsityPattern::causal_window(n, 8);
    let run = swat_attention::fused::fused_pattern_attention_in::<f32>(&q, &k, &v, &p, 0.125);
    let expect = reference::masked_attention(&q, &k, &v, &p, 0.125);
    assert!(run.output.max_abs_diff(&expect) < 1e-4);
}

#[test]
fn scheduler_and_accelerator_agree_on_model_latency() {
    let cfg = SwatConfig::bigbird_dual_fp16();
    let accel = SwatAccelerator::new(cfg.clone()).unwrap();
    let s = schedule_model(&cfg, 4096, 1, 12, 12);
    let direct = accel.model_latency_seconds(4096, 12, 12);
    assert!(
        (s.makespan - direct).abs() / direct < 1e-9,
        "schedule {} vs closed form {}",
        s.makespan,
        direct
    );
    assert!(s.memory_feasible);
}

#[test]
fn swat_streaming_fits_hbm_channels() {
    // The accelerator's off-chip stream for a 16K head, serviced by the
    // channel-level HBM model, must finish far sooner than the compute.
    let accel = SwatAccelerator::new(SwatConfig::longformer_fp16()).unwrap();
    let n = 16384;
    let bytes = accel.offchip_bytes(n);
    let hbm = HbmModel::u55c();
    // Conservative: uncoalesced 128-byte row bursts.
    let report = hbm.service_stream(0, (bytes / 128) as usize, 128, 128);
    let compute = accel.latency_seconds(n);
    assert!(
        report.seconds < compute / 50.0,
        "memory {} s vs compute {} s",
        report.seconds,
        compute
    );
}

#[test]
fn stable_variant_handles_what_the_hardware_cannot() {
    // Inputs hot enough to overflow the FP16 accelerator datapath: the
    // accelerator (faithfully) produces non-finite values; the online-max
    // extension recovers the exact result.
    let n = 64;
    let x = swat_tensor::Matrix::from_fn(n, 64, |_, _| 1.5f32);
    let cfg = SwatConfig {
        window_tokens: 32,
        precision: Precision::Fp16,
        ..SwatConfig::longformer_fp16()
    };
    let accel = SwatAccelerator::new(cfg).unwrap();
    let hw = accel.run(&x, &x, &x).unwrap();
    assert!(
        hw.output.as_slice().iter().any(|v| !v.is_finite()),
        "raw FP16 datapath must overflow on unnormalised hot inputs"
    );
    let stable = stable_window_attention_in::<F16>(&x, &x, &x, 16, 0.125);
    assert!(stable.output.as_slice().iter().all(|v| v.is_finite()));
    for v in stable.output.as_slice() {
        assert!(
            (v - 1.5).abs() < 0.01,
            "identical rows attend to themselves: {v}"
        );
    }
}

#[test]
fn dilated_pattern_in_multihead_layer() {
    use swat_attention::multihead::{multi_head_attention, MultiHeadWeights};
    let n = 64;
    let x = Workload::TopicSegments.generate(n, 16, 51).scale(0.4);
    let w = MultiHeadWeights::random(16, 4, 52);
    let plain = multi_head_attention(&x, &w, &SparsityPattern::sliding_window(n, 4));
    let dilated = multi_head_attention(&x, &w, &SparsityPattern::dilated_window(n, 4, 3));
    assert_eq!(plain.output.shape(), dilated.output.shape());
    // Same attended-token budget per row: FLOP counts match.
    assert_eq!(plain.counts.useful_flops, plain.counts.flops);
    // Different receptive fields: outputs genuinely differ.
    assert!(plain.output.max_abs_diff(&dilated.output) > 1e-6);
}
