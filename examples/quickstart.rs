//! Quickstart: simulate one attention head on SWAT and validate it against
//! the software reference.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use swat::{SwatAccelerator, SwatConfig};
use swat_attention::reference;
use swat_numeric::SplitMix64;
use swat_tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the accelerator in the paper's standard configuration:
    //    pure window attention, 2w = 512 tokens, H = 64, FP16.
    let cfg = SwatConfig::longformer_fp16();
    let accel = SwatAccelerator::new(cfg.clone())?;
    println!(
        "SWAT instance: {} attention cores, {} pipeline(s), {}",
        cfg.attention_cores(),
        cfg.pipelines,
        cfg.precision
    );
    println!("resources: {}", accel.resources());
    println!(
        "power: {:.1} W at {:.0} MHz\n",
        accel.power_watts(),
        cfg.clock.mhz()
    );

    // 2. Make a synthetic head: 2048 tokens, head dimension 64.
    let n = 2048;
    let mut rng = SplitMix64::new(7);
    let mut gen = |_: usize, _: usize| rng.next_f32_in(-1.0, 1.0);
    let q = Matrix::from_fn(n, cfg.head_dim, &mut gen);
    let k = Matrix::from_fn(n, cfg.head_dim, &mut gen);
    let v = Matrix::from_fn(n, cfg.head_dim, &mut gen);

    // 3. Run the functional + temporal simulation.
    let report = accel.run(&q, &k, &v)?;
    println!("{report}\n");

    // 4. Validate against the exact masked-softmax reference.
    let pattern = cfg.pattern_for(n);
    let expect = reference::masked_attention(&q, &k, &v, &pattern, cfg.scale);
    let err = report.output.max_abs_diff(&expect);
    println!("max |simulated - reference| = {err:.5} (binary16 datapath)");
    assert!(
        err < 0.05,
        "the FP16 datapath must stay close to the reference"
    );

    // 5. The headline scaling property: latency is linear in input length.
    println!("\nlatency scaling (one head):");
    for exp in [10u32, 12, 14] {
        let len = 1usize << exp;
        println!(
            "  {len:>6} tokens: {:>8.3} ms",
            accel.latency_seconds(len) * 1e3
        );
    }
    Ok(())
}
