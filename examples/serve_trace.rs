//! Chrome-trace export: replays 800 requests of diurnal traffic through
//! the full elastic stack (admission budgets, preemption, autoscaling,
//! sharded dispatch) with a [`ChromeTraceSink`] attached, and writes the
//! run as `trace.json` in Chrome trace-event format.
//!
//! Open the file in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: each card is a process with one track per
//! pipeline, every shard is a span named after its request, preemptions
//! and scaling decisions are instant events, and queue depth / in-flight
//! shards / powered cards / active energy ride along as counter tracks.
//!
//! ```text
//! cargo run --release --example serve_trace
//! ```
//!
//! The sink only observes — the same run with the sink detached produces
//! a byte-identical report (`trace_sink_never_perturbs_the_simulation`
//! in `crates/serve/tests/proptest_serve.rs` proves this property).

use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::policy::ShardedLeastLoaded;
use swat_serve::scale::AutoscalerConfig;
use swat_serve::sim::{AdmissionControl, PreemptionControl, Simulation, TrafficSpec};
use swat_serve::trace::ChromeTraceSink;
use swat_workloads::{RequestClass, RequestMix};

fn main() {
    // The serve_replay scenario, sized up to 800 requests: a compressed
    // diurnal "day" on a mixed FP16/FP32 fleet whose midday peak
    // transiently overloads capacity — so the trace shows shedding,
    // preemption instants, and the autoscaler waking parked cards.
    let spec = TrafficSpec {
        arrivals: ArrivalProcess::diurnal(2.0, 20.0),
        mix: RequestMix::Production,
        seed: 42,
    };
    let requests = spec.requests(800);
    let fleet = FleetConfig::mixed_precision(3, 2);
    println!(
        "tracing {} requests on {} cards ({} pipelines)…",
        requests.len(),
        fleet.cards(),
        fleet.total_pipelines()
    );

    let mut sink = ChromeTraceSink::new(&fleet);
    let report = Simulation::new(&fleet)
        .arrivals_label(format!("{}/{}", spec.arrivals.name(), spec.mix.name()))
        .admission(
            AdmissionControl::admit_all()
                .with_cap(RequestClass::Batch, 48)
                .with_cap(RequestClass::Background, 24),
        )
        .preemption(PreemptionControl::after_wait(0.25))
        .autoscale(AutoscalerConfig::standard().with_min_cards(2))
        .run_traced(&mut ShardedLeastLoaded::new(2), &requests, &mut sink);

    // Every dispatched shard must have closed — the kernel asserts its
    // in-flight table is empty, and the sink mirrors that invariant.
    assert_eq!(
        sink.open_spans(),
        0,
        "every shard span should have closed at fan-in or preemption"
    );
    println!(
        "{} completed / {} shed, {} preemptions, {} scaling decisions",
        report.completed,
        report.rejected,
        report.preemption_count(),
        report.scaling.len()
    );
    println!(
        "{} shard spans across {} trace events",
        sink.span_count(),
        sink.event_count()
    );

    let path = "trace.json";
    std::fs::write(path, sink.into_json().pretty()).expect("write trace.json");
    println!("wrote {path} — load it at https://ui.perfetto.dev");
}
