//! Serve replay: 60 simulated seconds of diurnal traffic through a mixed
//! FP16/FP32 SWAT fleet with admission control, with a queue-depth
//! timeline and per-class/per-group breakdowns.
//!
//! ```text
//! cargo run --release --example serve_replay
//! ```

use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::policy::LeastLoaded;
use swat_serve::sim::{AdmissionControl, Simulation, TrafficSpec};
use swat_workloads::RequestMix;

fn main() {
    // One compressed "day" of traffic: the rate ramps 2 → 20 rps and back
    // over the 60 s horizon. Three dual-pipeline FP16 cards plus two
    // single-pipeline FP32 cards sustain ≈12 rps of the production mix,
    // so the midday peak transiently overloads the fleet — which is when
    // the admission controller starts shedding background filler.
    let spec = TrafficSpec {
        arrivals: ArrivalProcess::diurnal(2.0, 20.0),
        mix: RequestMix::Production,
        seed: 42,
    };
    let requests = spec.requests_in(60.0);
    let fleet = FleetConfig::mixed_precision(3, 2);
    println!(
        "replaying {} requests over 60 s on {} cards ({} pipelines, {} groups)…\n",
        requests.len(),
        fleet.cards(),
        fleet.total_pipelines(),
        fleet.groups.len()
    );

    let report = Simulation::new(&fleet)
        .arrivals_label(format!("{}/{}", spec.arrivals.name(), spec.mix.name()))
        .admission(AdmissionControl::shed_background_at(24))
        .run(&mut LeastLoaded, &requests);

    // Queue depth over time, bucketed to 2.5 s columns.
    let mut buckets = [0usize; 24];
    for s in &report.queue.timeline {
        let b = ((s.time / 2.5) as usize).min(buckets.len() - 1);
        buckets[b] = buckets[b].max(s.depth);
    }
    let tallest = buckets.iter().copied().max().unwrap_or(1).max(1);
    println!(
        "queue depth (max per 2.5 s bucket, ▇ = {} requests):",
        tallest.div_ceil(8)
    );
    for (i, depth) in buckets.iter().enumerate() {
        let bar = "▇".repeat(8 * depth / tallest);
        println!("  {:>5.1} s | {bar:<8} {depth}", i as f64 * 2.5);
    }

    println!(
        "\n{} / {} requests met their SLO ({} shed by admission control)",
        report.completed - report.slo_violations,
        report.offered,
        report.rejected
    );
    println!(
        "latency p50/p95/p99: {:.1} / {:.1} / {:.1} ms  (max {:.1} ms)",
        report.latency.p50 * 1e3,
        report.latency.p95 * 1e3,
        report.latency.p99 * 1e3,
        report.latency.max * 1e3
    );
    for class in &report.classes {
        match class.latency {
            Some(l) => println!(
                "  {:<11} {:>4} done, {:>3} shed, {:>3} late, p50/p99 {:.1}/{:.1} ms",
                class.class.name(),
                class.completed,
                class.rejected,
                class.slo_violations,
                l.p50 * 1e3,
                l.p99 * 1e3
            ),
            None => println!(
                "  {:<11} {:>4} done, {:>3} shed",
                class.class.name(),
                class.completed,
                class.rejected
            ),
        }
    }
    println!(
        "throughput {:.1} rps, fleet utilization {:.0}%, energy {:.1} J",
        report.throughput_rps,
        report.fleet_utilization() * 100.0,
        report.energy_joules
    );
    for summary in &report.groups {
        let g = summary.group;
        println!(
            "  group {g} ({}): {:>4} served, {:>3.0}% busy, {:.1} J",
            fleet.groups[g].design(),
            summary.served,
            summary.utilization * 100.0,
            summary.energy_joules
        );
    }
    for c in &report.cards {
        println!(
            "    card {}: {:>4} served, {:>3.0}% busy, {:.1} J",
            c.card,
            c.served,
            c.utilization * 100.0,
            c.energy_joules
        );
    }
}
