//! Serve replay: 60 simulated seconds of diurnal traffic through a
//! four-card SWAT fleet, with a queue-depth timeline.
//!
//! ```text
//! cargo run --release --example serve_replay
//! ```

use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::policy::LeastLoaded;
use swat_serve::sim::{simulate, TrafficSpec};
use swat_workloads::RequestMix;

fn main() {
    // One compressed "day" of traffic: the rate ramps 2 → 20 rps and back
    // over the 60 s horizon. Four dual-pipeline cards sustain ≈13 rps of
    // the production mix, so the midday peak transiently overloads the
    // fleet and the queue drains on the evening downslope.
    let spec = TrafficSpec {
        arrivals: ArrivalProcess::diurnal(2.0, 20.0),
        mix: RequestMix::Production,
        seed: 42,
    };
    let requests = spec.requests_in(60.0);
    let fleet = FleetConfig::standard(4);
    println!(
        "replaying {} requests over 60 s on {} cards ({} pipelines)…\n",
        requests.len(),
        fleet.cards,
        fleet.cards * fleet.pipelines_per_card()
    );

    let mut report = simulate(&fleet, &mut LeastLoaded, &requests, false);
    report.arrivals = format!("{}/{}", spec.arrivals.name(), spec.mix.name());

    // Queue depth over time, bucketed to 2.5 s columns.
    let mut buckets = [0usize; 24];
    for s in &report.queue.timeline {
        let b = ((s.time / 2.5) as usize).min(buckets.len() - 1);
        buckets[b] = buckets[b].max(s.depth);
    }
    let tallest = buckets.iter().copied().max().unwrap_or(1).max(1);
    println!(
        "queue depth (max per 2.5 s bucket, ▇ = {} requests):",
        tallest.div_ceil(8)
    );
    for (i, depth) in buckets.iter().enumerate() {
        let bar = "▇".repeat(8 * depth / tallest);
        println!("  {:>5.1} s | {bar:<8} {depth}", i as f64 * 2.5);
    }

    println!(
        "\n{} / {} requests met their SLO",
        report.completed - report.slo_violations,
        report.completed
    );
    println!(
        "latency p50/p95/p99: {:.1} / {:.1} / {:.1} ms  (max {:.1} ms)",
        report.latency.p50 * 1e3,
        report.latency.p95 * 1e3,
        report.latency.p99 * 1e3,
        report.latency.max * 1e3
    );
    println!(
        "throughput {:.1} rps, fleet utilization {:.0}%, energy {:.1} J",
        report.throughput_rps,
        report.fleet_utilization() * 100.0,
        report.energy_joules
    );
    for c in &report.cards {
        println!(
            "  card {}: {:>4} served, {:>3.0}% busy, {:.1} J",
            c.card,
            c.served,
            c.utilization * 100.0,
            c.energy_joules
        );
    }
}
