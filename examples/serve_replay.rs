//! Serve replay: 60 simulated seconds of diurnal traffic through a mixed
//! FP16/FP32 SWAT fleet with the full elastic stack — per-class admission
//! budgets, preemption, autoscaling, and sharded (fan-out/fan-in)
//! dispatch — plus a queue-depth timeline and per-class/per-group
//! breakdowns.
//!
//! ```text
//! cargo run --release --example serve_replay
//! ```

use swat_serve::arrival::ArrivalProcess;
use swat_serve::fleet::FleetConfig;
use swat_serve::policy::ShardedLeastLoaded;
use swat_serve::scale::AutoscalerConfig;
use swat_serve::sim::{AdmissionControl, PreemptionControl, Simulation, TrafficSpec};
use swat_workloads::{RequestClass, RequestMix};

fn main() {
    // One compressed "day" of traffic: the rate ramps 2 → 20 rps and back
    // over the 60 s horizon. Three dual-pipeline FP16 cards plus two
    // single-pipeline FP32 cards sustain ≈12 rps of the production mix,
    // so the midday peak transiently overloads the fleet — which is when
    // the admission budgets start shedding batch and background filler,
    // waiting interactive requests start preempting in-flight background
    // work, and the autoscaler (which parked most of the fleet overnight)
    // pays warm-up latency to catch the ramp.
    let spec = TrafficSpec {
        arrivals: ArrivalProcess::diurnal(2.0, 20.0),
        mix: RequestMix::Production,
        seed: 42,
    };
    let requests = spec.requests_in(60.0);
    let fleet = FleetConfig::mixed_precision(3, 2);
    println!(
        "replaying {} requests over 60 s on {} cards ({} pipelines, {} groups)…\n",
        requests.len(),
        fleet.cards(),
        fleet.total_pipelines(),
        fleet.groups.len()
    );

    let report = Simulation::new(&fleet)
        .arrivals_label(format!("{}/{}", spec.arrivals.name(), spec.mix.name()))
        .admission(
            AdmissionControl::admit_all()
                .with_cap(RequestClass::Batch, 48)
                .with_cap(RequestClass::Background, 24),
        )
        .preemption(PreemptionControl::after_wait(0.25))
        .autoscale(AutoscalerConfig::standard().with_min_cards(2))
        .run(&mut ShardedLeastLoaded::new(2), &requests);

    // Queue depth over time, bucketed to 2.5 s columns.
    let mut buckets = [0usize; 24];
    for s in &report.queue.timeline {
        let b = ((s.time / 2.5) as usize).min(buckets.len() - 1);
        buckets[b] = buckets[b].max(s.depth);
    }
    let tallest = buckets.iter().copied().max().unwrap_or(1).max(1);
    println!(
        "queue depth (max per 2.5 s bucket, ▇ = {} requests):",
        tallest.div_ceil(8)
    );
    for (i, depth) in buckets.iter().enumerate() {
        let bar = "▇".repeat(8 * depth / tallest);
        println!("  {:>5.1} s | {bar:<8} {depth}", i as f64 * 2.5);
    }

    println!(
        "\n{} / {} requests met their SLO ({} shed by admission control)",
        report.completed - report.slo_violations,
        report.offered,
        report.rejected
    );
    if let Some(latency) = report.latency {
        println!(
            "latency p50/p95/p99: {:.1} / {:.1} / {:.1} ms  (max {:.1} ms)",
            latency.p50 * 1e3,
            latency.p95 * 1e3,
            latency.p99 * 1e3,
            latency.max * 1e3
        );
    }
    println!(
        "{} requests fanned out across pipelines (widest: {} shards)",
        report.sharded_requests, report.max_shards
    );
    for class in &report.classes {
        match class.latency {
            Some(l) => println!(
                "  {:<11} {:>4} done, {:>3} shed, {:>3} late, p50/p99 {:.1}/{:.1} ms",
                class.class.name(),
                class.completed,
                class.rejected,
                class.slo_violations,
                l.p50 * 1e3,
                l.p99 * 1e3
            ),
            None => println!(
                "  {:<11} {:>4} done, {:>3} shed",
                class.class.name(),
                class.completed,
                class.rejected
            ),
        }
    }
    println!(
        "throughput {:.1} rps, fleet utilization {:.0}%, energy {:.1} J active + {:.1} J idle",
        report.throughput_rps,
        report.fleet_utilization() * 100.0,
        report.energy_joules,
        report.idle_energy_joules
    );
    for summary in &report.groups {
        let g = summary.group;
        println!(
            "  group {g} ({}): {:>4} served, {:>3.0}% busy, {:.1} J",
            fleet.groups[g].design(),
            summary.served,
            summary.utilization * 100.0,
            summary.energy_joules
        );
    }
    for c in &report.cards {
        println!(
            "    card {}: {:>4} served, {:>2} preempted, {:>3.0}% busy, powered {:>4.1} s, {:.1} J (+{:.1} J idle)",
            c.card,
            c.served,
            c.preempted,
            c.utilization * 100.0,
            c.powered_seconds,
            c.energy_joules,
            c.idle_energy_joules
        );
    }

    let jobs_banked: usize = report.preemptions.iter().map(|p| p.jobs_checkpointed).sum();
    println!(
        "\n{} preemptions ({} background jobs checkpointed mid-flight):",
        report.preemption_count(),
        jobs_banked
    );
    for p in report.preemptions.iter().take(6) {
        println!(
            "  t={:>5.1} s  request {:>3} evicted from card {} ({} jobs banked) for request {}",
            p.time, p.preempted, p.card, p.jobs_checkpointed, p.waiting
        );
    }
    if report.preemptions.len() > 6 {
        println!("  … {} more", report.preemptions.len() - 6);
    }

    println!(
        "\nautoscaler timeline ({} decisions):",
        report.scaling.len()
    );
    for e in &report.scaling {
        println!(
            "  t={:>5.1} s  {} card {} (queue {:>2}, {} cards powered)",
            e.time,
            if e.powered_on { "wake" } else { "park" },
            e.card,
            e.queue_depth,
            e.powered_cards
        );
    }
}
