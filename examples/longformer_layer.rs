//! A full Longformer encoder layer on long documents: the software layer
//! runs end-to-end, and the attention inside is costed on SWAT vs the GPU
//! baselines — the scenario the paper's introduction motivates
//! (document-level tasks with long context).
//!
//! ```text
//! cargo run --example longformer_layer
//! ```

use swat::{SwatAccelerator, SwatConfig};
use swat_baselines::{GpuCostModel, GpuKernel};
use swat_model::layer::EncoderLayer;
use swat_model::ModelConfig;
use swat_tensor::Matrix;
use swat_workloads::generators::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::longformer_base();
    println!(
        "model: {} (d={}, {} heads, H={}, window {} tokens, {} layers)",
        model.name,
        model.d_model,
        model.heads,
        model.head_dim(),
        model.window_tokens,
        model.layers
    );

    // A functional forward pass on a (scaled-down) document so the example
    // finishes in seconds: 512 tokens, d=64.
    let n = 512;
    let d = 64;
    let layer = EncoderLayer::random(d, 4, 4, 42);
    let x = Workload::TopicSegments.generate(n, d, 1);
    let pattern = swat_attention::SparsityPattern::sliding_window(n, 32);
    let (y, counts) = layer.forward(&x, &pattern);
    println!(
        "\nfunctional forward pass: {n} tokens -> output {:?}, {:.2e} FLOPs, all finite: {}",
        y.shape(),
        counts.flops as f64,
        y.as_slice().iter().all(|v| v.is_finite())
    );
    let _ = Matrix::<f32>::zeros(1, 1);

    // Cost the *full-size* model's attention on SWAT vs the GPU baselines.
    let accel = SwatAccelerator::new(SwatConfig::longformer_fp16())?;
    let gpu = GpuCostModel::mi210();
    let w = model.window_half_width();
    println!(
        "\nattention time for the full {}-layer, {}-head model:",
        model.layers, model.heads
    );
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12}",
        "tokens", "SWAT fp16", "GPU dense", "GPU chunks"
    );
    for exp in [11u32, 12, 13, 14] {
        let len = 1usize << exp;
        let swat_s = accel.model_latency_seconds(len, model.heads, model.layers);
        let per_head = model.heads as f64 * model.layers as f64;
        let gpu_dense = gpu.attention_seconds(GpuKernel::Dense, len, model.head_dim()) * per_head;
        let gpu_chunks =
            gpu.attention_seconds(GpuKernel::SlidingChunks { w }, len, model.head_dim()) * per_head;
        println!(
            "{len:>8} | {:>10.1} ms | {:>10.1} ms | {:>10.1} ms",
            swat_s * 1e3,
            gpu_dense * 1e3,
            gpu_chunks * 1e3
        );
    }

    println!(
        "\nenergy per 16K-token model attention: SWAT {:.2} J vs GPU dense {:.2} J",
        accel.power_watts() * accel.model_latency_seconds(16384, model.heads, model.layers),
        300.0
            * gpu.attention_seconds(GpuKernel::Dense, 16384, model.head_dim())
            * (model.heads * model.layers) as f64,
    );
    Ok(())
}
