//! Design-space exploration over SWAT's design-time parameters: window
//! size, precision, and pipeline count — the kind of study the
//! parameterised architecture (Section 4.1) enables. Shows the
//! latency/resource/power trade-offs and which designs still fit the U55C.
//!
//! ```text
//! cargo run --example design_space
//! ```

use swat::resources::utilization;
use swat::{Precision, SwatAccelerator, SwatConfig};

fn main() {
    let seq_len = 8192;
    let heads = 12;
    let layers = 12;

    println!("design-space sweep @ {seq_len} tokens, {heads} heads x {layers} layers\n");
    println!(
        "{:<28} {:>6} {:>10} {:>8} {:>8} {:>9} {:>7}",
        "design", "2w", "model ms", "II", "W", "J/attn", "fits"
    );

    for precision in [Precision::Fp16, Precision::Fp32] {
        for window_tokens in [128usize, 256, 512, 1024] {
            for pipelines in [1usize, 2] {
                let cfg = SwatConfig {
                    window_tokens,
                    precision,
                    pipelines,
                    ..SwatConfig::longformer_fp16()
                };
                let name = format!("{precision} 2w={window_tokens} x{pipelines}");
                match SwatAccelerator::new(cfg.clone()) {
                    Ok(accel) => {
                        let ms = accel.model_latency_seconds(seq_len, heads, layers) * 1e3;
                        println!(
                            "{:<28} {:>6} {:>10.2} {:>8} {:>8.1} {:>9.4} {:>7}",
                            name,
                            window_tokens,
                            ms,
                            accel.initiation_interval(),
                            accel.power_watts(),
                            accel.energy_per_attention(seq_len),
                            "yes"
                        );
                    }
                    Err(_) => {
                        let u = utilization(&cfg);
                        println!(
                            "{:<28} {:>6} {:>10} {:>8} {:>8} {:>9} {:>7}",
                            name,
                            window_tokens,
                            "-",
                            "-",
                            "-",
                            "-",
                            format!("NO ({:.0}% max)", u.max_component() * 100.0)
                        );
                    }
                }
            }
        }
    }

    println!("\nobservations:");
    println!("  - II is set by the QK stage (3H+9 at FP16), so it is independent of 2w;");
    println!("    larger windows cost resources and power, not per-row latency.");
    println!("  - FP32 multiplies DSP use ~2.6x and pushes big windows off the device.");
    println!("  - a second pipeline halves model attention time for the same II.");
}
