//! BigBird-style attention (window + global + random) on SWAT's
//! parameterised design: demonstrates the Figure 7 core roles — global
//! cores pre-loaded, random cores reloading per row — and validates the
//! numerics against the reference.
//!
//! ```text
//! cargo run --example bigbird_document
//! ```

use swat::{Precision, SwatAccelerator, SwatConfig};
use swat_attention::reference;
use swat_tensor::Matrix;
use swat_workloads::generators::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down BigBird design so the functional run is quick:
    // 32 window + 8 global + 16 random tokens per row.
    let cfg = SwatConfig {
        window_tokens: 32,
        global_tokens: 8,
        random_tokens: 16,
        precision: Precision::Fp16,
        ..SwatConfig::longformer_fp16()
    };
    let accel = SwatAccelerator::new(cfg.clone())?;
    println!(
        "BigBird design: {} window + {} global + {} random cores ({} total)",
        cfg.window_tokens,
        cfg.global_tokens,
        cfg.random_tokens,
        cfg.attention_cores()
    );

    // Scattered-dependency workload: the regime random attention targets.
    // Note the 0.35 normalisation: SWAT's fused datapath takes raw
    // exponentials (no max-subtraction — that is what makes the kernel
    // fusion possible), so like the real hardware it relies on inputs
    // being layer-norm scaled. Unnormalised gaussians overflow binary16's
    // 65504 range in the row-sum.
    let n = 512;
    let (q, k, v) = Workload::ScatteredDependencies.generate_qkv(n, cfg.head_dim, 3);
    let q = q.scale(0.35);
    let k = k.scale(0.35);
    let report = accel.run(&q, &k, &v)?;
    println!("\n{report}");

    // Load accounting mirrors the hardware's core roles.
    println!("\ncore-role behaviour (Figure 7):");
    println!("  window K/V rows loaded once each: {}", report.kv_loads);
    println!(
        "  random-core reloads (per-row gathers): {}",
        report.kv_reloads
    );
    println!(
        "  LOAD stage: {} cycles (vs {} for a pure-window design)",
        report.stage_timings.effective_load(true),
        report.stage_timings.load
    );
    println!(
        "  ...but the II stays {} — the pipeline absorbs the slower gather",
        report.initiation_interval
    );

    // Validate the numerics.
    let pattern = cfg.pattern_for(n);
    let expect = reference::masked_attention(&q, &k, &v, &pattern, cfg.scale);
    let err = report.output.max_abs_diff(&expect);
    println!("\nmax |simulated - reference| = {err:.5}");
    assert!(err < 0.05);

    // Compare with the paper's full BigBird configuration for cost.
    let full = SwatAccelerator::new(SwatConfig::bigbird_fp16())?;
    println!(
        "\nfull BigBird config (192+128+192): {:.3} ms per 4K-token head, {}",
        full.latency_seconds(4096) * 1e3,
        full.resources()
    );
    let _ = Matrix::<f32>::zeros(1, 1);
    Ok(())
}
