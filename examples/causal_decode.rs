//! Causal (autoregressive) window attention on SWAT: the decode-side
//! variant of the sliding window, as used by Mistral-class models. Shows
//! the pattern extension, validates numerics, and compares the attention
//! budget against bidirectional windows.
//!
//! ```text
//! cargo run --example causal_decode
//! ```

use swat_attention::{reference, SparsityPattern};
use swat_numeric::SplitMix64;
use swat_tensor::Matrix;

fn main() {
    let n = 256;
    let h = 32;
    let w = 8; // 2w = 16-token causal span

    let mut rng = SplitMix64::new(2024);
    let mut gen = |_: usize, _: usize| rng.next_f32_in(-0.5, 0.5);
    let q = Matrix::from_fn(n, h, &mut gen);
    let k = Matrix::from_fn(n, h, &mut gen);
    let v = Matrix::from_fn(n, h, &mut gen);
    let scale = 1.0 / (h as f32).sqrt();

    let causal = SparsityPattern::causal_window(n, w);
    let bidir = SparsityPattern::sliding_window(n, w);

    println!(
        "causal window 2w={}: token 100 attends {:?}",
        2 * w,
        causal.row_targets(100)
    );
    println!(
        "bidirectional     : token 100 attends {:?}",
        bidir.row_targets(100)
    );

    // Causality check: outputs for prefix positions must be identical
    // whether or not the future exists.
    let z_full = reference::masked_attention(&q, &k, &v, &causal, scale);
    let half = n / 2;
    let slice = |m: &Matrix<f32>| Matrix::from_fn(half, h, |i, j| m.get(i, j));
    let (q2, k2, v2) = (slice(&q), slice(&k), slice(&v));
    let causal_half = SparsityPattern::causal_window(half, w);
    let z_half = reference::masked_attention(&q2, &k2, &v2, &causal_half, scale);
    let mut max_diff = 0.0f32;
    for i in 0..half {
        for j in 0..h {
            max_diff = max_diff.max((z_full.get(i, j) - z_half.get(i, j)).abs());
        }
    }
    println!("\nprefix invariance (causality): max diff {max_diff:.2e} — the future never leaks");
    assert!(max_diff < 1e-6);

    // Budget accounting: causal attends the same 2w tokens, all behind.
    println!(
        "\nattended positions per interior row: causal {} vs bidirectional {}",
        causal.row_targets(n / 2).len(),
        bidir.row_targets(n / 2).len()
    );
    println!(
        "pattern density: causal {:.4} vs bidirectional {:.4} (same hardware budget)",
        causal.density(),
        bidir.density()
    );

    // Dilated variant: same budget, triple the receptive field.
    let dilated = SparsityPattern::dilated_window(n, w, 3);
    let reach = |p: &SparsityPattern| {
        let t = p.row_targets(n / 2);
        t[t.len() - 1] - t[0]
    };
    println!(
        "\ndilated (d=3) receptive field: {} positions vs plain {} — same {} cores",
        reach(&dilated),
        reach(&bidir),
        2 * w
    );
}
