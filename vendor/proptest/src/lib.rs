//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this workspace vendors a minimal, API-compatible subset of proptest
//! sufficient for the property tests in this repository:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`],
//! - [`Strategy`](strategy::Strategy) with `prop_map`, range and tuple
//!   strategies, [`Just`](strategy::Just), [`any`], and
//!   [`collection::vec`].
//!
//! Semantics differ from the real crate in one deliberate way: cases are
//! generated from a fixed per-test seed (derived from the test's module
//! path and name), and failing inputs are **not shrunk** — the panic
//! message reports the case number so a failure is still reproducible by
//! rerunning the same test. If the real proptest ever becomes available,
//! deleting this crate and pointing the dev-dependencies at crates.io
//! restores full shrinking behaviour without touching any test.

pub mod test_runner {
    /// Deterministic SplitMix64 stream used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream for one named test case. The seed depends only
        /// on the test name and case index, so runs are reproducible.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. The real proptest couples generation with a
    /// shrinking value tree; this subset only generates.
    pub trait Strategy {
        type Value;

        /// Generates one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally-weighted alternatives.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    self.start.wrapping_add(rng.below(u64::from(span)) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32);

    impl Strategy for Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end as u64).wrapping_sub(self.start as u64);
            self.start.wrapping_add(rng.below(span) as i64)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Full-range generation for primitive types, via [`crate::any`].
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Any<T> {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Generates any value of an [`strategy::Arbitrary`] type.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Admissible size arguments for [`vec`]: a fixed length or a range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::strategy::{Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // The body runs in a move closure so `prop_assume!` can
                // abandon a case with `return`.
                (move || {
                    let _ = &__case;
                    $body
                })();
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Uniform choice among strategies that yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Abandons the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}
