//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to crates.io, so
//! this workspace vendors the small API subset the `benches/` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Instead of criterion's statistical analysis, each benchmark runs a short
//! warm-up, then measures batches of iterations for a fixed time budget and
//! reports the best observed per-iteration time — enough to compare kernels
//! locally. Swapping the dev-dependency back to crates.io restores the real
//! harness without touching any benchmark source.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for a parameterised benchmark, e.g. `simulate/16384`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Runs one benchmark body repeatedly and records the best batch.
pub struct Bencher {
    budget: Duration,
    best_ns_per_iter: f64,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            budget,
            best_ns_per_iter: f64::INFINITY,
        }
    }

    /// Measures `f` until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        let started = Instant::now();
        let mut batch = 1u64;
        while started.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
    }
}

fn report(name: &str, bench: &Bencher) {
    let ns = bench.best_ns_per_iter;
    let pretty = if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{:.3} ms", ns / 1e6)
    };
    println!("bench {name:<40} {pretty}/iter");
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed time budget already bounds
    /// the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
